#include "src/workflow/validation.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "src/graph/algorithms.h"

namespace skl {

namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

std::unordered_set<uint64_t> EdgeKeySet(
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) keys.insert(EdgeKey(u, v));
  return keys;
}

}  // namespace

Status CheckAcyclicFlowNetwork(const Digraph& g, VertexId* source,
                               VertexId* sink) {
  if (g.num_vertices() == 0) {
    return Status::InvalidSpecification("graph is empty");
  }
  if (HasParallelEdges(g)) {
    return Status::InvalidSpecification("graph has parallel edges");
  }
  if (!IsAcyclic(g)) {
    return Status::InvalidSpecification("graph has a cycle");
  }
  auto sources = Sources(g);
  auto sinks = Sinks(g);
  if (sources.size() != 1) {
    return Status::InvalidSpecification(
        "graph must have exactly one source, found " +
        std::to_string(sources.size()));
  }
  if (sinks.size() != 1) {
    return Status::InvalidSpecification(
        "graph must have exactly one sink, found " +
        std::to_string(sinks.size()));
  }
  // Every vertex must lie on a source-to-sink path. With unique terminals it
  // suffices that every vertex is reachable from the source; reaching the
  // sink follows because any maximal forward walk ends at the unique sink.
  DynamicBitset from_source = ReachableFrom(g, sources[0]);
  if (from_source.Count() != g.num_vertices()) {
    return Status::InvalidSpecification(
        "not all vertices are reachable from the source");
  }
  *source = sources[0];
  *sink = sinks[0];
  return Status::OK();
}

Result<SubgraphInfo> NormalizeSubgraph(const Digraph& g, SubgraphKind kind,
                                       std::vector<VertexId> vertices) {
  const VertexId n = g.num_vertices();
  SubgraphInfo info;
  info.kind = kind;
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  if (vertices.size() < 2) {
    return Status::InvalidSpecification(
        "subgraph needs at least two vertices (source != sink)");
  }
  for (VertexId v : vertices) {
    if (v >= n) {
      return Status::InvalidSpecification("subgraph vertex out of range");
    }
  }
  info.vertices = std::move(vertices);
  info.vertex_set = DynamicBitset(n);
  for (VertexId v : info.vertices) info.vertex_set.Set(v);

  // Source/sink: unique vertices without induced in/out edges.
  VertexId source = kInvalidVertex;
  VertexId sink = kInvalidVertex;
  for (VertexId v : info.vertices) {
    bool has_in = false, has_out = false;
    for (VertexId u : g.InNeighbors(v)) has_in |= info.vertex_set.Test(u);
    for (VertexId u : g.OutNeighbors(v)) has_out |= info.vertex_set.Test(u);
    if (!has_in) {
      if (source != kInvalidVertex) {
        return Status::InvalidSpecification("subgraph has multiple sources");
      }
      source = v;
    }
    if (!has_out) {
      if (sink != kInvalidVertex) {
        return Status::InvalidSpecification("subgraph has multiple sinks");
      }
      sink = v;
    }
  }
  if (source == kInvalidVertex || sink == kInvalidVertex) {
    // All vertices have induced in- and out-edges: the induced subgraph has a
    // cycle or no terminals (impossible in a DAG unless empty).
    return Status::InvalidSpecification("subgraph has no source or sink");
  }
  if (source == sink) {
    return Status::InvalidSpecification("subgraph source equals sink");
  }
  info.source = source;
  info.sink = sink;

  // E(H): induced edges; forks exclude a direct source->sink edge.
  for (VertexId u : info.vertices) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (!info.vertex_set.Test(v)) continue;
      if (kind == SubgraphKind::kFork && u == source && v == sink) continue;
      info.edges.emplace_back(u, v);
    }
  }
  if (info.edges.empty()) {
    return Status::InvalidSpecification("subgraph has no edges");
  }

  // Definition 1(2): internal vertices must not touch the outside.
  for (VertexId v : info.vertices) {
    if (v == source || v == sink) continue;
    for (VertexId u : g.InNeighbors(v)) {
      if (!info.vertex_set.Test(u)) {
        return Status::InvalidSpecification(
            "internal vertex has an incoming edge from outside the subgraph");
      }
    }
    for (VertexId u : g.OutNeighbors(v)) {
      if (!info.vertex_set.Test(u)) {
        return Status::InvalidSpecification(
            "internal vertex has an outgoing edge to outside the subgraph");
      }
    }
  }

  info.dom_set = DynamicBitset(n);
  if (kind == SubgraphKind::kFork) {
    for (VertexId v : info.vertices) {
      if (v != source && v != sink) info.dom_set.Set(v);
    }
    if (info.dom_set.None()) {
      return Status::InvalidSpecification(
          "fork needs at least one internal vertex (single-edge forks would "
          "create parallel edges when executed)");
    }
    // Atomicity (Lemma 5.1 characterization): the internal vertex set must be
    // weakly connected under the E(H) edges joining internal vertices.
    std::vector<bool> in_internal(n, false);
    for (VertexId v : info.vertices) {
      if (v != source && v != sink) in_internal[v] = true;
    }
    DigraphBuilder fb(n);
    for (const auto& [u, v] : info.edges) {
      if (in_internal[u] && in_internal[v]) fb.AddEdge(u, v);
    }
    Digraph filtered = std::move(fb).Build();
    if (!InducedWeaklyConnected(filtered, in_internal)) {
      return Status::InvalidSpecification(
          "fork is not atomic: internal vertices split into parallel "
          "branches");
    }
  } else {
    for (VertexId v : info.vertices) info.dom_set.Set(v);
    // Completeness: every out-neighbor of the source and in-neighbor of the
    // sink lies inside the subgraph.
    for (VertexId v : g.OutNeighbors(source)) {
      if (!info.vertex_set.Test(v)) {
        return Status::InvalidSpecification(
            "loop is not complete: source has an outgoing edge leaving it");
      }
    }
    for (VertexId v : g.InNeighbors(sink)) {
      if (!info.vertex_set.Test(v)) {
        return Status::InvalidSpecification(
            "loop is not complete: sink has an incoming edge entering it");
      }
    }
  }
  return info;
}

Status CheckWellNested(const std::vector<SubgraphInfo>& subgraphs) {
  const size_t k = subgraphs.size();
  std::vector<std::unordered_set<uint64_t>> edge_sets(k);
  for (size_t i = 0; i < k; ++i) edge_sets[i] = EdgeKeySet(subgraphs[i].edges);

  auto subset = [&](size_t a, size_t b) {
    if (edge_sets[a].size() > edge_sets[b].size()) return false;
    for (uint64_t e : edge_sets[a]) {
      if (!edge_sets[b].count(e)) return false;
    }
    return true;
  };
  auto edges_disjoint = [&](size_t a, size_t b) {
    const auto& small = edge_sets[a].size() <= edge_sets[b].size()
                            ? edge_sets[a]
                            : edge_sets[b];
    const auto& big = edge_sets[a].size() <= edge_sets[b].size()
                          ? edge_sets[b]
                          : edge_sets[a];
    for (uint64_t e : small) {
      if (big.count(e)) return false;
    }
    return true;
  };

  // Note on strictness: the paper's Definition 2 asks for strict edge
  // containment, but its own running example nests fork F2 inside loop L2
  // with E(F2) == E(L2) and DomSet(F2) strictly smaller. We therefore read
  // containment non-strictly on edges and require strictness on at least one
  // of the two dimensions (identical fork/loop declarations stay rejected).
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const auto& di = subgraphs[i].dom_set;
      const auto& dj = subgraphs[j].dom_set;
      bool proper_ij = edge_sets[i].size() < edge_sets[j].size() ||
                       (di.Count() < dj.Count() && di.IsSubsetOf(dj));
      bool proper_ji = edge_sets[j].size() < edge_sets[i].size() ||
                       (dj.Count() < di.Count() && dj.IsSubsetOf(di));
      bool nested_ij = di.IsSubsetOf(dj) && subset(i, j) && proper_ij;
      bool nested_ji = dj.IsSubsetOf(di) && subset(j, i) && proper_ji;
      bool disjoint = !di.Intersects(dj) && edges_disjoint(i, j);
      if (!(nested_ij || nested_ji || disjoint)) {
        return Status::InvalidSpecification(
            "subgraphs " + std::to_string(i) + " and " + std::to_string(j) +
            " are neither nested nor disjoint (well-nestedness violated)");
      }
    }
  }
  return Status::OK();
}

}  // namespace skl
