#include "src/workflow/specification.h"

#include <unordered_set>
#include <utility>

#include "src/workflow/validation.h"

namespace skl {

const std::string& Specification::ModuleName(VertexId v) const {
  return modules_->Name(static_cast<ModuleId>(v));
}

VertexId Specification::VertexOf(std::string_view module_name) const {
  ModuleId id = modules_->Find(module_name);
  return id == kInvalidModule ? kInvalidVertex : static_cast<VertexId>(id);
}

VertexId SpecificationBuilder::AddModule(std::string_view name) {
  names_.emplace_back(name);
  return static_cast<VertexId>(names_.size() - 1);
}

SpecificationBuilder& SpecificationBuilder::AddEdge(VertexId u, VertexId v) {
  edges_.emplace_back(u, v);
  return *this;
}

SpecificationBuilder& SpecificationBuilder::DeclareFork(
    std::vector<VertexId> vertices) {
  declared_.emplace_back(SubgraphKind::kFork, std::move(vertices));
  return *this;
}

SpecificationBuilder& SpecificationBuilder::DeclareLoop(
    std::vector<VertexId> vertices) {
  declared_.emplace_back(SubgraphKind::kLoop, std::move(vertices));
  return *this;
}

Result<Specification> SpecificationBuilder::Build() && {
  Specification spec;
  spec.modules_ = std::make_shared<ModuleTable>();
  {
    std::unordered_set<std::string> seen;
    for (const std::string& name : names_) {
      if (name.empty()) {
        return Status::InvalidSpecification("module name must be non-empty");
      }
      if (!seen.insert(name).second) {
        return Status::InvalidSpecification("duplicate module name: " + name);
      }
      spec.modules_->Intern(name);
    }
  }
  DigraphBuilder gb(static_cast<VertexId>(names_.size()));
  for (const auto& [u, v] : edges_) {
    if (u >= names_.size() || v >= names_.size()) {
      return Status::InvalidSpecification("edge endpoint out of range");
    }
    if (u == v) {
      return Status::InvalidSpecification("self-loop edges are not allowed");
    }
    gb.AddEdge(u, v);
  }
  spec.graph_ = std::move(gb).Build();
  SKL_RETURN_NOT_OK(
      CheckAcyclicFlowNetwork(spec.graph_, &spec.source_, &spec.sink_));

  for (auto& [kind, vertices] : declared_) {
    SKL_ASSIGN_OR_RETURN(
        SubgraphInfo info,
        NormalizeSubgraph(spec.graph_, kind, std::move(vertices)));
    if (info.kind == SubgraphKind::kFork) {
      ++spec.num_forks_;
    } else {
      ++spec.num_loops_;
    }
    spec.subgraphs_.push_back(std::move(info));
  }
  SKL_RETURN_NOT_OK(CheckWellNested(spec.subgraphs_));
  SKL_ASSIGN_OR_RETURN(spec.hierarchy_,
                       BuildHierarchy(spec.graph_, spec.subgraphs_,
                                      spec.source_, spec.sink_));
  return spec;
}

}  // namespace skl
