#include "src/workflow/hierarchy.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/check.h"

namespace skl {

namespace {
uint64_t EdgeKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}
}  // namespace

Result<Hierarchy> BuildHierarchy(const Digraph& g,
                                 const std::vector<SubgraphInfo>& subgraphs,
                                 VertexId source, VertexId sink) {
  Hierarchy h;
  const size_t k = subgraphs.size();
  h.nodes_.resize(k + 1);

  // Root stands for all of G.
  HierNode& root = h.nodes_[kHierRoot];
  root.kind = HierKind::kRoot;
  root.source = source;
  root.sink = sink;
  root.dom_set = DynamicBitset(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) root.dom_set.Set(v);

  std::vector<std::unordered_set<uint64_t>> edge_sets(k);
  for (size_t i = 0; i < k; ++i) {
    edge_sets[i].reserve(subgraphs[i].edges.size() * 2);
    for (const auto& [u, v] : subgraphs[i].edges) {
      edge_sets[i].insert(EdgeKey(u, v));
    }
  }

  // Parent of subgraph i: the smallest proper "ancestor" by nesting. Edge
  // sets may coincide for a fork nested in a loop with the same span, in
  // which case the DomSet (strictly larger for the loop) breaks the tie.
  auto nested_in = [&](size_t i, size_t j) {
    if (edge_sets[i].size() > edge_sets[j].size()) return false;
    for (uint64_t e : edge_sets[i]) {
      if (!edge_sets[j].count(e)) return false;
    }
    if (!subgraphs[i].dom_set.IsSubsetOf(subgraphs[j].dom_set)) return false;
    return edge_sets[i].size() < edge_sets[j].size() ||
           subgraphs[i].dom_set.Count() < subgraphs[j].dom_set.Count();
  };
  for (size_t i = 0; i < k; ++i) {
    HierNodeId node_id = static_cast<HierNodeId>(i + 1);
    HierNode& node = h.nodes_[node_id];
    node.kind = subgraphs[i].kind == SubgraphKind::kFork ? HierKind::kFork
                                                         : HierKind::kLoop;
    node.subgraph_index = static_cast<int32_t>(i);
    node.source = subgraphs[i].source;
    node.sink = subgraphs[i].sink;
    node.dom_set = subgraphs[i].dom_set;

    HierNodeId best = kHierRoot;
    size_t best_edges = SIZE_MAX;
    size_t best_dom = SIZE_MAX;
    for (size_t j = 0; j < k; ++j) {
      if (j == i || !nested_in(i, j)) continue;
      size_t ej = edge_sets[j].size();
      size_t dj = subgraphs[j].dom_set.Count();
      if (ej < best_edges || (ej == best_edges && dj < best_dom)) {
        best = static_cast<HierNodeId>(j + 1);
        best_edges = ej;
        best_dom = dj;
      }
    }
    node.parent = best;
  }
  for (size_t i = 0; i < k; ++i) {
    HierNodeId id = static_cast<HierNodeId>(i + 1);
    h.nodes_[h.nodes_[id].parent].children.push_back(id);
  }

  // Depths via BFS from the root; also detect (impossible) parent cycles.
  std::vector<HierNodeId> queue{kHierRoot};
  h.nodes_[kHierRoot].depth = 1;
  size_t head = 0;
  size_t seen = 1;
  while (head < queue.size()) {
    HierNodeId x = queue[head++];
    for (HierNodeId c : h.nodes_[x].children) {
      h.nodes_[c].depth = h.nodes_[x].depth + 1;
      queue.push_back(c);
      ++seen;
    }
  }
  if (seen != h.nodes_.size()) {
    return Status::Internal("hierarchy parent relation is not a tree");
  }
  h.depth_ = 1;
  for (const HierNode& n : h.nodes_) h.depth_ = std::max(h.depth_, n.depth);
  h.levels_.assign(h.depth_ + 1, {});
  for (size_t i = 0; i < h.nodes_.size(); ++i) {
    h.levels_[h.nodes_[i].depth].push_back(static_cast<HierNodeId>(i));
  }

  // Own edges: E(H) minus edges of the children. The root owns every
  // remaining edge of G.
  std::vector<std::unordered_set<uint64_t>> child_edges(k + 1);
  for (size_t i = 0; i < k; ++i) {
    HierNodeId parent = h.nodes_[i + 1].parent;
    for (uint64_t e : edge_sets[i]) child_edges[parent].insert(e);
  }
  for (size_t i = 0; i < k; ++i) {
    HierNode& node = h.nodes_[i + 1];
    for (const auto& [u, v] : subgraphs[i].edges) {
      if (!child_edges[i + 1].count(EdgeKey(u, v))) {
        node.own_edges.emplace_back(u, v);
      }
    }
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (!child_edges[kHierRoot].count(EdgeKey(u, v))) {
        h.nodes_[kHierRoot].own_edges.emplace_back(u, v);
      }
    }
  }

  // Leaders: leaves seed copy discovery with one of their own edges; inner
  // nodes designate a child whose collapsed execution edge acts as the seed.
  for (HierNode& node : h.nodes_) {
    if (node.children.empty()) {
      if (node.kind != HierKind::kRoot) {
        SKL_CHECK(!node.own_edges.empty());
        node.leader_edge = node.own_edges.front();
      }
    } else {
      node.designated_child = node.children.front();
    }
  }

  // Vertex owners: deepest node whose DomSet contains the vertex. DomSets of
  // distinct nodes are laminar, so "deepest containing" is well-defined.
  h.owner_.assign(g.num_vertices(), kHierRoot);
  std::vector<int32_t> owner_depth(g.num_vertices(), 1);
  for (size_t i = 0; i < k; ++i) {
    const HierNode& node = h.nodes_[i + 1];
    for (size_t v = node.dom_set.FindFirst(); v < node.dom_set.size();
         v = node.dom_set.FindNext(v)) {
      if (node.depth > owner_depth[v]) {
        owner_depth[v] = node.depth;
        h.owner_[v] = static_cast<HierNodeId>(i + 1);
      }
    }
  }
  h.own_vertices_.assign(k + 1, {});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    h.own_vertices_[h.owner_[v]].push_back(v);
  }
  return h;
}

}  // namespace skl
