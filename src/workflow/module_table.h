// Interned module names. A specification assigns each vertex a unique module
// name; run vertices reference the same table (Definition 8: the origin of a
// run vertex is the specification vertex with the same module name).
#ifndef SKL_WORKFLOW_MODULE_TABLE_H_
#define SKL_WORKFLOW_MODULE_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace skl {

using ModuleId = uint32_t;
inline constexpr ModuleId kInvalidModule = UINT32_MAX;

class ModuleTable {
 public:
  /// Interns `name`, returning its id (existing id if already present).
  ModuleId Intern(std::string_view name);

  /// Id of `name`, or kInvalidModule if absent.
  ModuleId Find(std::string_view name) const;

  /// Name for an id. Precondition: id < size().
  const std::string& Name(ModuleId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ModuleId> index_;
};

}  // namespace skl

#endif  // SKL_WORKFLOW_MODULE_TABLE_H_
