// Structural validation of the workflow model: acyclic flow networks,
// self-contained / atomic / complete subgraphs (Definition 1) and
// well-nestedness (Definition 2). Used by SpecificationBuilder and tested
// directly; the checks are also reusable as an oracle over run graphs.
#ifndef SKL_WORKFLOW_VALIDATION_H_
#define SKL_WORKFLOW_VALIDATION_H_

#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/subgraph.h"

namespace skl {

/// Checks that g is an acyclic flow network: simple DAG with a unique source
/// and unique sink and every vertex on some source-to-sink path. Outputs the
/// terminals on success.
Status CheckAcyclicFlowNetwork(const Digraph& g, VertexId* source,
                               VertexId* sink);

/// Normalizes a declared fork/loop vertex set into a SubgraphInfo and checks
/// Definition 1 for it: self-contained, plus atomic (forks; requires at least
/// one internal vertex, see DESIGN.md) or complete (loops).
Result<SubgraphInfo> NormalizeSubgraph(const Digraph& g, SubgraphKind kind,
                                       std::vector<VertexId> vertices);

/// Checks Definition 2 over all declared subgraphs: every pair is nested
/// (DomSet and edge containment agree) or fully disjoint, and no two
/// subgraphs coincide.
Status CheckWellNested(const std::vector<SubgraphInfo>& subgraphs);

}  // namespace skl

#endif  // SKL_WORKFLOW_VALIDATION_H_
