// Normalized fork/loop subgraph record shared by the specification,
// validation and hierarchy-construction code.
#ifndef SKL_WORKFLOW_SUBGRAPH_H_
#define SKL_WORKFLOW_SUBGRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/bitset.h"
#include "src/graph/digraph.h"

namespace skl {

/// Kind of a declared repeatable subgraph.
enum class SubgraphKind : uint8_t { kFork, kLoop };

/// A normalized fork or loop subgraph of the specification.
struct SubgraphInfo {
  SubgraphKind kind = SubgraphKind::kFork;
  VertexId source = kInvalidVertex;
  VertexId sink = kInvalidVertex;
  std::vector<VertexId> vertices;                    ///< sorted, incl. s/t
  DynamicBitset vertex_set;                          ///< over V(G)
  std::vector<std::pair<VertexId, VertexId>> edges;  ///< E(H)
  DynamicBitset dom_set;  ///< Definition 2: V*(H) for forks, V(H) for loops.
};

}  // namespace skl

#endif  // SKL_WORKFLOW_SUBGRAPH_H_
