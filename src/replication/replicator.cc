#include "src/replication/replicator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/io/workflow_xml.h"
#include "src/speclabel/scheme.h"

namespace skl {

Status ApplyLogOp(ProvenanceService& service, const LogOp& op) {
  switch (op.kind) {
    case LogOp::Kind::kAddRun:
    case LogOp::Kind::kImportRun:
      return service.RestoreRun(op.run_id, op.stats, op.blob);
    case LogOp::Kind::kRemoveRun: {
      Status removed = service.RemoveRun(RunId::FromValue(op.run_id));
      // Idempotent re-apply (snapshot/stream overlap, replayed recovery):
      // the run being gone already is the desired end state.
      if (removed.code() == StatusCode::kNotFound) return Status::OK();
      return removed;
    }
    case LogOp::Kind::kSnapshotBarrier:
      return Status::OK();
    case LogOp::Kind::kSpecDelta: {
      SKL_ASSIGN_OR_RETURN(SpecDelta delta, DeserializeSpecDelta(op.blob));
      // op.stats.epoch is the epoch the delta produced on the primary; the
      // replica path enforces chain continuity and skips already-applied
      // epochs (snapshot/stream overlap).
      return service.ApplySpecDeltaReplicated(delta, op.stats.epoch);
    }
  }
  return Status::InvalidArgument(
      "log op kind " +
      std::to_string(static_cast<unsigned>(op.kind)) +
      " is not applicable");
}

Result<RecoveredPrimary> RecoverPrimary(
    const std::string& oplog_path,
    ProvenanceService::Options service_options,
    OpLog::Options oplog_options) {
  SKL_ASSIGN_OR_RETURN(OpLogReplay replay, OpLog::ReplayFile(oplog_path));
  SKL_ASSIGN_OR_RETURN(Specification spec,
                       ReadSpecificationXml(replay.spec_xml));
  SKL_ASSIGN_OR_RETURN(SpecSchemeKind kind,
                       ParseSpecSchemeKind(replay.scheme_name));
  SKL_ASSIGN_OR_RETURN(
      ProvenanceService service,
      ProvenanceService::Create(std::move(spec), kind, service_options));
  for (const LogOp& op : replay.ops) {
    if (op.kind == LogOp::Kind::kSnapshotBarrier) {
      // The registry was replaced wholesale here; recovery chains through
      // the recorded snapshot file instead of replaying across it.
      const std::string snapshot_path(op.blob.begin(), op.blob.end());
      Result<ProvenanceService> loaded =
          ProvenanceService::LoadSnapshot(snapshot_path, service_options);
      if (!loaded.ok()) {
        return Status::Internal(
            "op-log entry at LSN " + std::to_string(op.lsn) +
            " chains through snapshot '" + snapshot_path +
            "', which no longer loads: " + loaded.status().message());
      }
      service = std::move(*loaded);
      continue;
    }
    Status applied = ApplyLogOp(service, op);
    if (!applied.ok()) {
      return Status::Internal(
          "op-log entry at LSN " + std::to_string(op.lsn) +
          " does not apply: " + applied.message());
    }
  }
  // Open (which replays again and truncates any torn tail) *before*
  // attaching: replaying RemoveRun ops through a service that already has
  // the log attached would re-append them.
  SKL_ASSIGN_OR_RETURN(
      std::unique_ptr<OpLog> oplog,
      OpLog::Open(oplog_path, replay.spec_xml, replay.scheme_name,
                  oplog_options));
  service.AttachOpLog(oplog.get());
  return RecoveredPrimary{std::move(service), std::move(oplog)};
}

// ------------------------------------------------------------ ReadReplica --

ReadReplica::ReadReplica(Options options, std::string primary_host,
                         uint16_t primary_port)
    : options_(std::move(options)),
      primary_host_(std::move(primary_host)),
      primary_port_(primary_port) {}

Result<std::unique_ptr<ReadReplica>> ReadReplica::Start(
    const std::string& primary_host, uint16_t primary_port,
    Options options) {
  SKL_ASSIGN_OR_RETURN(
      ProvenanceClient client,
      ProvenanceClient::Connect(primary_host, primary_port, options.client));
  client.set_trace_id(options.trace_id);
  SKL_ASSIGN_OR_RETURN(SnapshotFetchResult snap, client.SnapshotFetch());
  SKL_ASSIGN_OR_RETURN(ProvenanceService service,
                       ProvenanceService::LoadSnapshotBytes(
                           std::move(snap.bytes), options.service));
  ProvenanceServer::Options server_options;
  server_options.port = options.port;
  server_options.bind_address = options.listen_address;
  server_options.num_threads = options.num_threads;
  server_options.read_only = true;
  SKL_ASSIGN_OR_RETURN(
      std::unique_ptr<ProvenanceServer> server,
      ProvenanceServer::Start(std::move(service), server_options));
  server->SetReplicationLsns(snap.lsn, snap.lsn);

  auto replica = std::unique_ptr<ReadReplica>(
      new ReadReplica(std::move(options), primary_host, primary_port));
  replica->server_ = std::move(server);
  replica->client_.emplace(std::move(client));
  replica->applied_.store(snap.lsn, std::memory_order_release);
  replica->tail_thread_ = std::thread(&ReadReplica::TailLoop, replica.get());
  return replica;
}

ReadReplica::~ReadReplica() { Stop(); }

void ReadReplica::Stop() {
  {
    std::lock_guard lock(err_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  if (tail_thread_.joinable()) tail_thread_.join();
  server_->Shutdown();
}

Status ReadReplica::WaitForLsn(uint64_t lsn, uint64_t timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const uint64_t applied = applied_.load(std::memory_order_acquire);
    if (applied >= lsn) return Status::OK();
    Status err = tail_error();
    if (!err.ok()) return err;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(
          "replica applied LSN " + std::to_string(applied) +
          ", did not reach LSN " + std::to_string(lsn) + " within " +
          std::to_string(timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status ReadReplica::tail_error() const {
  std::lock_guard lock(err_mu_);
  return tail_error_;
}

void ReadReplica::RecordError(Status status) {
  std::lock_guard lock(err_mu_);
  tail_error_ = std::move(status);
}

Status ReadReplica::Rebootstrap() {
  SKL_ASSIGN_OR_RETURN(SnapshotFetchResult snap, client_->SnapshotFetch());
  SKL_ASSIGN_OR_RETURN(ProvenanceService service,
                       ProvenanceService::LoadSnapshotBytes(
                           std::move(snap.bytes), options_.service));
  server_->ReplaceService(std::move(service));
  applied_.store(snap.lsn, std::memory_order_release);
  return Status::OK();
}

void ReadReplica::TailLoop() {
  unsigned failures = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    Result<LogBatch> batch =
        client_->Subscribe(applied_.load(std::memory_order_acquire),
                           options_.max_batch);
    if (!batch.ok()) {
      // The primary is unreachable (or desynced us): remember why, back
      // off, reconnect, try again. The replica keeps serving reads at its
      // current LSN the whole time.
      RecordError(batch.status());
      ++failures;
      const int shift = failures < 20 ? static_cast<int>(failures) : 20;
      const uint64_t delay_ms = std::min<uint64_t>(
          options_.client.backoff_max_ms,
          static_cast<uint64_t>(
              std::max<uint32_t>(options_.client.backoff_base_ms, 1))
              << shift);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      if (stop_.load(std::memory_order_acquire)) return;
      Result<ProvenanceClient> fresh = ProvenanceClient::Connect(
          primary_host_, primary_port_, options_.client);
      if (fresh.ok()) {
        fresh->set_trace_id(options_.trace_id);
        client_.emplace(std::move(*fresh));
      }
      continue;
    }
    failures = 0;
    bool rebootstrapped = false;
    for (const LogOp& op : batch->ops) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (op.kind == LogOp::Kind::kSnapshotBarrier) {
        Status rc = Rebootstrap();
        if (!rc.ok()) {
          // Treated like a transport failure: retry the whole cycle from
          // the old applied LSN (the barrier will come again).
          RecordError(rc);
        }
        rebootstrapped = true;
        break;  // the snapshot superseded the rest of the batch
      }
      Status applied = Status::OK();
      server_->WithServiceShared([&](ProvenanceService& service) {
        applied = ApplyLogOp(service, op);
      });
      if (!applied.ok()) {
        // An op that does not apply is not retryable — the stream and the
        // local state disagree. Freeze: keep serving at the current LSN,
        // report via tail_error/WaitForLsn.
        RecordError(Status::Internal(
            "replicated op at LSN " + std::to_string(op.lsn) +
            " does not apply: " + applied.message()));
        return;
      }
      applied_.store(op.lsn, std::memory_order_release);
    }
    server_->SetReplicationLsns(applied_.load(std::memory_order_acquire),
                                batch->primary_last_lsn);
    if (!rebootstrapped && batch->ops.empty()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
  }
}

}  // namespace skl
