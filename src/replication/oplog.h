// Durable operation log: the replication subsystem's source of truth
// (docs/REPLICATION.md). Every mutating ProvenanceService op — AddRun (all
// ingestion paths), ImportRun, RemoveRun, plus a LoadSnapshot barrier —
// is appended as one CRC-framed entry with a monotonically increasing log
// sequence number (LSN), *before* the op is acked to the caller. A crashed
// primary therefore replays to a state that contains every op any client
// ever saw succeed; replicas tail the same entries over the wire
// (kSubscribe) and apply them in LSN order.
//
// File layout (same sectioned-container idiom as src/io/snapshot.cc: all
// multi-byte fields via the bit_codec varint/bit encodings, byte-aligned,
// every payload CRC-checked):
//
//   magic "SKLO"              32 bits
//   format version            varint
//   header frame:
//     payload length (bytes)  32 bits
//     payload CRC-32          32 bits
//     payload: spec XML (length-prefixed), scheme name (length-prefixed)
//   entry frames, each:
//     payload length (bytes)  32 bits
//     payload CRC-32          32 bits
//     payload: varint LSN, 8-bit op kind, kind-specific fields
//
// LSNs start at 1 and increment by exactly 1; replay verifies the
// sequence, so a dropped or reordered entry is corruption, not a gap to
// skip. Replay is truncation/corruption-tolerant: it stops at the last
// entry whose frame and payload check out and reports *why* it stopped in
// OpLogReplay::tail — a torn tail (crashed mid-append) is truncated away
// on reopen and appending continues from the surviving LSN; it never
// crashes and never silently skips a damaged entry to resync.
//
// The log is append-only and never compacted: a LoadSnapshot barrier
// records where a snapshot superseded the registry (recovery chains
// through it; replicas re-bootstrap), but the bytes before it stay.
#ifndef SKL_REPLICATION_OPLOG_H_
#define SKL_REPLICATION_OPLOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/core/run_registry.h"

namespace skl {

/// Current op-log format version. Version 2 (docs/UPDATES.md) adds the
/// run's spec epoch to add/import entries and the kSpecDelta entry kind;
/// version-1 files remain readable (their runs decode as epoch 1) but
/// refuse v2-only appends.
inline constexpr uint32_t kOpLogFormatVersion = 2;

/// One replicated operation. The AddRun/ImportRun payload carries the
/// registered id, the ingestion-time RunStats and the ProvenanceStore blob
/// (the exact shape the snapshot Runs section stores per run), so a
/// replica restores bit-identical stats and labels without relabeling.
struct LogOp {
  enum class Kind : uint8_t {
    kAddRun = 1,           ///< any non-import ingestion path
    kImportRun = 2,        ///< ImportRun (replica apply also invalidates)
    kRemoveRun = 3,
    kSnapshotBarrier = 4,  ///< service replaced via LoadSnapshot
    kSpecDelta = 5,        ///< ApplySpecDelta (format v2+ only)
  };

  Kind kind = Kind::kAddRun;
  uint64_t lsn = 0;     ///< assigned by OpLog::Append
  uint64_t run_id = 0;  ///< add/import/remove; unused for barriers/deltas
  /// add/import: the ingestion-time stats (stats.epoch is the run's spec
  /// epoch). kSpecDelta reuses stats.epoch alone: the epoch the delta
  /// *produces*, so a replica can verify chain continuity before applying.
  RunStats stats;
  /// add/import: the ProvenanceStore blob; barrier: the server-side
  /// snapshot path (recovery chains through it); delta: the
  /// SerializeSpecDelta bytes.
  std::vector<uint8_t> blob;
};

/// Encodes one op into its entry payload (without the length/CRC framing):
/// the byte shape that travels in kLogEntries frames and on disk, at the
/// given format version. Version 1 cannot express epochs past 1 or
/// kSpecDelta — callers must gate (OpLog::Append does).
std::vector<uint8_t> SerializeLogOp(const LogOp& op,
                                    uint32_t version = kOpLogFormatVersion);

/// Decodes an entry payload at the given format version, validating the op
/// kind, field ranges and that the payload is fully consumed. `lsn` is
/// whatever the entry carries; the sequence check against the predecessor
/// is the caller's. Version-1 payloads decode with stats.epoch = 1.
Result<LogOp> DeserializeLogOp(std::span<const uint8_t> payload,
                               uint32_t version = kOpLogFormatVersion);

/// What OpLog::ReplayFile recovered from a log file.
struct OpLogReplay {
  std::string spec_xml;
  std::string scheme_name;
  /// The file's format version (1 or 2).
  uint32_t version = kOpLogFormatVersion;
  /// The valid entry prefix, LSNs 1..last_lsn in order.
  std::vector<LogOp> ops;
  uint64_t last_lsn = 0;
  /// File offset just past the last valid entry (the truncation point a
  /// reopen uses to drop a torn tail).
  size_t valid_bytes = 0;
  /// OK: the file ends cleanly after the last entry. Otherwise a
  /// descriptive ParseError saying why replay stopped (torn tail, CRC
  /// mismatch, LSN discontinuity, malformed entry).
  Status tail;
};

/// OpLog knobs. (Namespace-scope so it can be brace-defaulted in Open's
/// declaration; spelled OpLog::Options at call sites.)
struct OpLogOptions {
  /// fsync every append before acking. The durable default survives
  /// power loss; tests that only need process-crash durability (a
  /// written page survives the process) disable it for speed.
  bool fsync = true;
};

/// The durable log. Internally synchronized: Append / last_lsn / ReadFrom
/// may be called concurrently (the service appends from many ingestion
/// threads; the server's kSubscribe handler reads). Non-movable — the
/// service and server hold borrowed pointers — so Open returns a
/// unique_ptr.
class OpLog {
 public:
  using Options = OpLogOptions;

  /// Opens `path` for appending. A missing file is created with a header
  /// recording `spec_xml` and `scheme_name`; an existing file is replayed,
  /// checked against both (a log from a different specification or scheme
  /// is refused), its torn tail — if any — truncated away, and appending
  /// continues at the surviving LSN. Entry-level corruption *before* the
  /// tail also truncates from the first damaged entry: everything after it
  /// was never guaranteed ordered, and a log that lies about its LSNs is
  /// worse than a shorter one.
  static Result<std::unique_ptr<OpLog>> Open(const std::string& path,
                                             const std::string& spec_xml,
                                             const std::string& scheme_name,
                                             Options options = {});

  /// Parses a log file without opening it for append: header, then every
  /// entry until damage or end-of-file (see OpLogReplay::tail). The
  /// recovery entry point (RecoverPrimary) and the corruption fuzz test's
  /// subject.
  static Result<OpLogReplay> ReplayFile(const std::string& path);

  ~OpLog();
  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;

  /// Assigns the next LSN to `op`, appends the framed entry and (by
  /// default) fsyncs before returning the LSN. A failed write or sync
  /// poisons the log — the file may hold a torn entry, so every later
  /// append fails with the same Internal status rather than risking an
  /// out-of-sequence tail.
  Result<uint64_t> Append(LogOp op);

  /// Last successfully appended LSN (0 for an empty log). Lock-free.
  uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_acquire);
  }

  /// Up to `max_ops` entries with LSN > after_lsn, in LSN order — the
  /// kSubscribe serving path. Entries are copied out; the in-memory tail
  /// mirrors the file, so this never touches disk.
  std::vector<LogOp> ReadFrom(uint64_t after_lsn, size_t max_ops) const;

  const std::string& path() const { return path_; }
  const std::string& spec_xml() const { return spec_xml_; }
  const std::string& scheme_name() const { return scheme_name_; }

  /// The format version of the backing file: kOpLogFormatVersion for a
  /// fresh file, the recorded version for a reopened one. Appends encode
  /// at this version; v2-only ops (kSpecDelta, epoch > 1) into a version-1
  /// file fail with InvalidArgument instead of writing bytes a version-1
  /// reader would mis-decode.
  uint32_t file_version() const { return file_version_; }

  /// Append latency distributions, microseconds (docs/OBSERVABILITY.md):
  /// the whole Append (serialize + write + flush + fsync) and the fsync
  /// portion alone (0-filled when Options::fsync is off). The net server
  /// renders both into its kMetrics exposition.
  const LatencyHistogram& append_histogram() const { return append_hist_; }
  const LatencyHistogram& fsync_histogram() const { return fsync_hist_; }

 private:
  OpLog(std::string path, std::string spec_xml, std::string scheme_name,
        Options options);

  std::string path_;
  std::string spec_xml_;
  std::string scheme_name_;
  Options options_;
  uint32_t file_version_ = kOpLogFormatVersion;  // set once in Open

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;     // guarded by mu_
  std::vector<LogOp> ops_;        // every entry, index = LSN - 1; by mu_
  Status poisoned_;               // non-OK once an append failed; by mu_
  std::atomic<uint64_t> last_lsn_{0};
  LatencyHistogram append_hist_;  // internally atomic, not under mu_
  LatencyHistogram fsync_hist_;
};

}  // namespace skl

#endif  // SKL_REPLICATION_OPLOG_H_
