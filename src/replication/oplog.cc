#include "src/replication/oplog.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/common/bit_codec.h"
#include "src/common/crc32.h"

namespace skl {

namespace {

constexpr uint32_t kMagic = 0x534b4c4f;  // "SKLO"

/// Bytes of the len + CRC prefix in front of every entry payload.
constexpr size_t kEntryFrameBytes = 8;

#if defined(__unix__) || defined(__APPLE__)
Status FsyncPath(const char* path, int flags, const std::string& what) {
  int fd = ::open(path, flags);
  if (fd < 0) return Status::Internal("cannot open " + what + " for sync");
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) return Status::Internal("cannot sync " + what);
  return Status::OK();
}
#endif

Status SyncDir(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string d = dir.empty() ? "." : dir;
  return FsyncPath(d.c_str(), O_RDONLY | O_DIRECTORY,
                   "op-log directory " + d);
#else
  (void)dir;
  return Status::OK();
#endif
}

/// Flushes an open log file's written bytes to stable storage.
Status SyncOpenFile(std::FILE* file, const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(file)) != 0) {
    return Status::Internal("cannot sync op-log file " + path);
  }
#else
  (void)file;
  (void)path;
#endif
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open op-log file " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("error reading op-log file " + path);
  return bytes;
}

std::span<const uint8_t> StrSpan(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

/// The bytes a fresh log file starts with: magic, format version, and the
/// CRC-framed header payload naming the spec and scheme.
std::vector<uint8_t> EncodeFilePrefix(const std::string& spec_xml,
                                      const std::string& scheme_name) {
  BitWriter header;
  header.WriteVarint(spec_xml.size());
  header.WriteBytes(StrSpan(spec_xml));
  header.WriteVarint(scheme_name.size());
  header.WriteBytes(StrSpan(scheme_name));
  const std::vector<uint8_t> header_payload = header.Finish();

  BitWriter prefix;
  prefix.Write(kMagic, 32);
  prefix.WriteVarint(kOpLogFormatVersion);
  prefix.Write(static_cast<uint32_t>(header_payload.size()), 32);
  prefix.Write(Crc32(header_payload), 32);
  prefix.WriteBytes(header_payload);
  return prefix.Finish();
}

}  // namespace

// ------------------------------------------------------- entry payloads --

std::vector<uint8_t> SerializeLogOp(const LogOp& op, uint32_t version) {
  BitWriter writer;
  writer.WriteVarint(op.lsn);
  writer.Write(static_cast<uint8_t>(op.kind), 8);
  switch (op.kind) {
    case LogOp::Kind::kAddRun:
    case LogOp::Kind::kImportRun: {
      writer.WriteVarint(op.run_id);
      const RunStats& s = op.stats;
      writer.WriteVarint(s.num_vertices);
      writer.WriteVarint(s.num_items);
      writer.WriteVarint(s.label_bits);
      writer.WriteVarint(s.context_bits);
      writer.WriteVarint(s.origin_bits);
      writer.WriteVarint(s.num_nonempty_plus);
      writer.WriteVarint(s.imported ? 1 : 0);
      if (version >= 2) writer.WriteVarint(s.epoch);
      writer.WriteVarint(op.blob.size());
      writer.WriteBytes(op.blob);
      break;
    }
    case LogOp::Kind::kRemoveRun:
      writer.WriteVarint(op.run_id);
      break;
    case LogOp::Kind::kSnapshotBarrier:
      writer.WriteVarint(op.blob.size());
      writer.WriteBytes(op.blob);
      break;
    case LogOp::Kind::kSpecDelta:
      // v2-only (Append gates); the epoch the delta produces, then the
      // SerializeSpecDelta bytes.
      writer.WriteVarint(op.stats.epoch);
      writer.WriteVarint(op.blob.size());
      writer.WriteBytes(op.blob);
      break;
  }
  return writer.Finish();
}

Result<LogOp> DeserializeLogOp(std::span<const uint8_t> payload,
                               uint32_t version) {
  BitReader reader(payload.data(), payload.size());
  uint64_t lsn = 0, kind = 0;
  if (!reader.ReadVarint(&lsn).ok()) {
    return Status::ParseError("op-log entry truncated inside its LSN");
  }
  if (lsn == 0) {
    return Status::ParseError("op-log entry carries LSN 0 (LSNs start at 1)");
  }
  if (!reader.Read(8, &kind).ok()) {
    return Status::ParseError("op-log entry truncated before its op kind");
  }
  const auto max_kind = version >= 2 ? LogOp::Kind::kSpecDelta
                                     : LogOp::Kind::kSnapshotBarrier;
  if (kind < static_cast<uint64_t>(LogOp::Kind::kAddRun) ||
      kind > static_cast<uint64_t>(max_kind)) {
    return Status::ParseError("op-log entry has unknown op kind " +
                              std::to_string(kind));
  }

  LogOp op;
  op.lsn = lsn;
  op.kind = static_cast<LogOp::Kind>(kind);
  switch (op.kind) {
    case LogOp::Kind::kAddRun:
    case LogOp::Kind::kImportRun: {
      uint64_t run_id = 0, num_vertices = 0, num_items = 0, label_bits = 0,
               context_bits = 0, origin_bits = 0, num_nonempty_plus = 0,
               imported = 0, epoch = 1, blob_len = 0;
      if (!reader.ReadVarint(&run_id).ok() ||
          !reader.ReadVarint(&num_vertices).ok() ||
          !reader.ReadVarint(&num_items).ok() ||
          !reader.ReadVarint(&label_bits).ok() ||
          !reader.ReadVarint(&context_bits).ok() ||
          !reader.ReadVarint(&origin_bits).ok() ||
          !reader.ReadVarint(&num_nonempty_plus).ok() ||
          !reader.ReadVarint(&imported).ok() ||
          (version >= 2 && !reader.ReadVarint(&epoch).ok()) ||
          !reader.ReadVarint(&blob_len).ok()) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": truncated run fields");
      }
      if (run_id == 0) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": run id 0 is not a valid id");
      }
      if (imported > 1) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": bad imported flag");
      }
      if (epoch == 0) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": spec epoch 0 (epochs start at 1)");
      }
      // The stats fields restore into uint32_t (same guard as the snapshot
      // Runs section): a corrupted varint must not silently truncate.
      if (num_vertices > UINT32_MAX || label_bits > UINT32_MAX ||
          context_bits > UINT32_MAX || origin_bits > UINT32_MAX ||
          num_nonempty_plus > UINT32_MAX) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": stats field out of range");
      }
      std::span<const uint8_t> blob;
      if (!reader.ReadBytes(static_cast<size_t>(blob_len), &blob).ok()) {
        return Status::ParseError(
            "op-log entry LSN " + std::to_string(lsn) + " declares " +
            std::to_string(blob_len) + " blob bytes past the entry end");
      }
      op.run_id = run_id;
      op.stats.num_vertices = static_cast<VertexId>(num_vertices);
      op.stats.num_items = static_cast<size_t>(num_items);
      op.stats.label_bits = static_cast<uint32_t>(label_bits);
      op.stats.context_bits = static_cast<uint32_t>(context_bits);
      op.stats.origin_bits = static_cast<uint32_t>(origin_bits);
      op.stats.num_nonempty_plus = static_cast<uint32_t>(num_nonempty_plus);
      op.stats.imported = imported != 0;
      op.stats.epoch = epoch;
      op.blob.assign(blob.begin(), blob.end());
      break;
    }
    case LogOp::Kind::kRemoveRun: {
      uint64_t run_id = 0;
      if (!reader.ReadVarint(&run_id).ok()) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": truncated run id");
      }
      if (run_id == 0) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": run id 0 is not a valid id");
      }
      op.run_id = run_id;
      break;
    }
    case LogOp::Kind::kSnapshotBarrier: {
      uint64_t blob_len = 0;
      if (!reader.ReadVarint(&blob_len).ok()) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": truncated barrier payload length");
      }
      std::span<const uint8_t> blob;
      if (!reader.ReadBytes(static_cast<size_t>(blob_len), &blob).ok()) {
        return Status::ParseError(
            "op-log entry LSN " + std::to_string(lsn) + " declares " +
            std::to_string(blob_len) + " barrier bytes past the entry end");
      }
      op.blob.assign(blob.begin(), blob.end());
      break;
    }
    case LogOp::Kind::kSpecDelta: {
      uint64_t epoch = 0, blob_len = 0;
      if (!reader.ReadVarint(&epoch).ok() ||
          !reader.ReadVarint(&blob_len).ok()) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": truncated spec-delta fields");
      }
      // A delta always *produces* an epoch, and epoch 1 is the creation
      // spec — no delta can produce it.
      if (epoch < 2) {
        return Status::ParseError("op-log entry LSN " + std::to_string(lsn) +
                                  ": spec delta targets epoch " +
                                  std::to_string(epoch) +
                                  " (deltas produce epochs >= 2)");
      }
      std::span<const uint8_t> blob;
      if (!reader.ReadBytes(static_cast<size_t>(blob_len), &blob).ok()) {
        return Status::ParseError(
            "op-log entry LSN " + std::to_string(lsn) + " declares " +
            std::to_string(blob_len) + " delta bytes past the entry end");
      }
      op.stats.epoch = epoch;
      op.blob.assign(blob.begin(), blob.end());
      break;
    }
  }
  reader.AlignToByte();
  if (reader.bit_position() / 8 != payload.size()) {
    return Status::ParseError(
        "op-log entry LSN " + std::to_string(lsn) + " has " +
        std::to_string(payload.size() - reader.bit_position() / 8) +
        " trailing bytes");
  }
  return op;
}

// ------------------------------------------------------------ the log --

OpLog::OpLog(std::string path, std::string spec_xml, std::string scheme_name,
             Options options)
    : path_(std::move(path)),
      spec_xml_(std::move(spec_xml)),
      scheme_name_(std::move(scheme_name)),
      options_(options) {}

OpLog::~OpLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<OpLogReplay> OpLog::ReplayFile(const std::string& path) {
  SKL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  BitReader reader(bytes);

  uint64_t magic = 0;
  if (!reader.Read(32, &magic).ok()) {
    return Status::ParseError("op-log truncated: missing file header");
  }
  if (magic != kMagic) {
    return Status::ParseError("not an SKL op-log (bad magic)");
  }
  uint64_t version = 0;
  if (!reader.ReadVarint(&version).ok()) {
    return Status::ParseError("op-log truncated: missing format version");
  }
  if (version < 1 || version > kOpLogFormatVersion) {
    return Status::ParseError(
        "unsupported op-log format version " + std::to_string(version) +
        " (this build reads versions 1.." +
        std::to_string(kOpLogFormatVersion) + ")");
  }
  uint64_t header_len = 0, header_crc = 0;
  if (!reader.Read(32, &header_len).ok() ||
      !reader.Read(32, &header_crc).ok()) {
    return Status::ParseError("op-log truncated: incomplete header frame");
  }
  std::span<const uint8_t> header_payload;
  if (!reader.ReadBytes(static_cast<size_t>(header_len), &header_payload)
           .ok()) {
    return Status::ParseError("op-log header declares " +
                              std::to_string(header_len) +
                              " bytes past end of file");
  }
  if (Crc32(header_payload) != header_crc) {
    return Status::ParseError(
        "op-log header checksum mismatch (corrupted header)");
  }

  OpLogReplay replay;
  replay.version = static_cast<uint32_t>(version);
  {
    BitReader header(header_payload.data(), header_payload.size());
    uint64_t spec_len = 0, scheme_len = 0;
    std::span<const uint8_t> spec, scheme;
    if (!header.ReadVarint(&spec_len).ok() ||
        !header.ReadBytes(static_cast<size_t>(spec_len), &spec).ok() ||
        !header.ReadVarint(&scheme_len).ok() ||
        !header.ReadBytes(static_cast<size_t>(scheme_len), &scheme).ok()) {
      return Status::ParseError("op-log header payload is malformed");
    }
    header.AlignToByte();
    if (header.bit_position() / 8 != header_payload.size()) {
      return Status::ParseError("op-log header has trailing bytes");
    }
    replay.spec_xml.assign(spec.begin(), spec.end());
    replay.scheme_name.assign(scheme.begin(), scheme.end());
  }

  // Entry loop. The replay invariant: after every iteration, ops holds the
  // complete valid prefix (LSNs 1..last_lsn) and valid_bytes points just
  // past it — the first damaged frame sets `tail` and stops, never skips.
  replay.valid_bytes = reader.bit_position() / 8;
  const size_t total = bytes.size();
  while (true) {
    const size_t offset = reader.bit_position() / 8;
    const size_t remaining = total - offset;
    if (remaining == 0) break;  // clean end: tail stays OK
    const std::string after = "after LSN " + std::to_string(replay.last_lsn);
    if (remaining < kEntryFrameBytes) {
      replay.tail = Status::ParseError(
          "op-log torn tail " + after + ": " + std::to_string(remaining) +
          " trailing bytes are too short for an entry frame");
      break;
    }
    uint64_t len = 0, crc = 0;
    // Cannot fail: kEntryFrameBytes are present.
    (void)reader.Read(32, &len);
    (void)reader.Read(32, &crc);
    if (len > remaining - kEntryFrameBytes) {
      replay.tail = Status::ParseError(
          "op-log entry " + after + " declares " + std::to_string(len) +
          " payload bytes but only " +
          std::to_string(remaining - kEntryFrameBytes) +
          " remain (torn tail)");
      break;
    }
    std::span<const uint8_t> payload;
    (void)reader.ReadBytes(static_cast<size_t>(len), &payload);
    if (Crc32(payload) != crc) {
      replay.tail = Status::ParseError(
          "op-log entry " + after +
          " failed its CRC-32 check (corrupted or torn append)");
      break;
    }
    Result<LogOp> op = DeserializeLogOp(payload, replay.version);
    if (!op.ok()) {
      replay.tail = Status::ParseError("op-log entry " + after +
                                       " is malformed: " +
                                       op.status().message());
      break;
    }
    if (op->lsn != replay.last_lsn + 1) {
      replay.tail = Status::ParseError(
          "op-log LSN discontinuity: expected " +
          std::to_string(replay.last_lsn + 1) + ", entry carries " +
          std::to_string(op->lsn));
      break;
    }
    replay.ops.push_back(std::move(op).value());
    replay.last_lsn += 1;
    replay.valid_bytes = reader.bit_position() / 8;
  }
  return replay;
}

Result<std::unique_ptr<OpLog>> OpLog::Open(const std::string& path,
                                           const std::string& spec_xml,
                                           const std::string& scheme_name,
                                           Options options) {
  std::unique_ptr<OpLog> log(
      new OpLog(path, spec_xml, scheme_name, options));
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);
  if (exists) {
    SKL_ASSIGN_OR_RETURN(OpLogReplay replay, ReplayFile(path));
    if (replay.spec_xml != spec_xml) {
      return Status::InvalidArgument(
          "op-log at " + path +
          " was written for a different specification; refusing to append");
    }
    if (replay.scheme_name != scheme_name) {
      return Status::InvalidArgument(
          "op-log at " + path + " was written for scheme '" +
          replay.scheme_name + "', not '" + scheme_name +
          "'; refusing to append");
    }
    // Drop the torn/corrupt tail (if any) so the next append lands right
    // after the last valid entry instead of extending garbage.
    std::error_code size_ec;
    const uintmax_t size = std::filesystem::file_size(path, size_ec);
    if (size_ec) {
      return Status::Internal("cannot stat op-log file " + path + ": " +
                              size_ec.message());
    }
    if (size > replay.valid_bytes) {
      std::error_code trunc_ec;
      std::filesystem::resize_file(path, replay.valid_bytes, trunc_ec);
      if (trunc_ec) {
        return Status::Internal("cannot truncate op-log torn tail at " +
                                path + ": " + trunc_ec.message());
      }
    }
    log->file_version_ = replay.version;
    log->ops_ = std::move(replay.ops);
    log->last_lsn_.store(replay.last_lsn, std::memory_order_release);
    log->file_ = std::fopen(path.c_str(), "ab");
    if (log->file_ == nullptr) {
      return Status::Internal("cannot open op-log file " + path +
                              " for append");
    }
  } else {
    log->file_ = std::fopen(path.c_str(), "wb");
    if (log->file_ == nullptr) {
      return Status::Internal("cannot create op-log file " + path);
    }
    const std::vector<uint8_t> prefix =
        EncodeFilePrefix(spec_xml, scheme_name);
    if (std::fwrite(prefix.data(), 1, prefix.size(), log->file_) !=
            prefix.size() ||
        std::fflush(log->file_) != 0) {
      return Status::Internal("error writing op-log header to " + path);
    }
    if (options.fsync) {
      SKL_RETURN_NOT_OK(SyncOpenFile(log->file_, path));
      // The file's directory entry must also be durable, or a crash could
      // forget the log existed while clients hold acks recorded in it.
      SKL_RETURN_NOT_OK(
          SyncDir(std::filesystem::path(path).parent_path().string()));
    }
  }
  return log;
}

Result<uint64_t> OpLog::Append(LogOp op) {
  const auto append_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  // A version-1 file cannot carry what a version-1 reader cannot decode:
  // refusing here keeps old files honest instead of writing entries that
  // would replay as corruption.
  if (file_version_ < 2 &&
      (op.kind == LogOp::Kind::kSpecDelta || op.stats.epoch > 1)) {
    return Status::InvalidArgument(
        "op-log at " + path_ + " is format version " +
        std::to_string(file_version_) +
        ", which cannot encode spec epochs; start a fresh log to use "
        "spec deltas");
  }
  const uint64_t lsn = last_lsn_.load(std::memory_order_relaxed) + 1;
  op.lsn = lsn;
  const std::vector<uint8_t> payload = SerializeLogOp(op, file_version_);
  BitWriter framed;
  framed.Write(static_cast<uint32_t>(payload.size()), 32);
  framed.Write(Crc32(payload), 32);
  framed.WriteBytes(payload);
  const std::vector<uint8_t> bytes = framed.Finish();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    poisoned_ = Status::Internal(
        "op-log append of LSN " + std::to_string(lsn) + " failed: write "
        "error on " + path_ + " (the file may hold a torn entry; the log "
        "is poisoned and refuses further appends)");
    return poisoned_;
  }
  if (options_.fsync) {
    const auto fsync_start = std::chrono::steady_clock::now();
    Status synced = SyncOpenFile(file_, path_);
    fsync_hist_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - fsync_start)
            .count()));
    if (!synced.ok()) {
      poisoned_ = Status::Internal(
          "op-log append of LSN " + std::to_string(lsn) +
          " failed: " + synced.message() +
          " (durability unknown; the log is poisoned)");
      return poisoned_;
    }
  }
  ops_.push_back(std::move(op));
  last_lsn_.store(lsn, std::memory_order_release);
  append_hist_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - append_start)
          .count()));
  return lsn;
}

std::vector<LogOp> OpLog::ReadFrom(uint64_t after_lsn, size_t max_ops) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogOp> out;
  if (after_lsn >= ops_.size()) return out;
  // LSN n lives at index n-1, so the first entry past `after_lsn` is at
  // index after_lsn exactly.
  const size_t begin = static_cast<size_t>(after_lsn);
  const size_t end = std::min(ops_.size(), begin + max_ops);
  out.assign(ops_.begin() + static_cast<ptrdiff_t>(begin),
             ops_.begin() + static_cast<ptrdiff_t>(end));
  return out;
}

}  // namespace skl
