// Replica-side and recovery halves of the replication subsystem
// (docs/REPLICATION.md; the primary-side half is OpLog + the server's
// kSnapshotFetch/kSubscribe handlers).
//
//   // Crash recovery: rebuild a primary from its op-log alone.
//   auto rec = *RecoverPrimary("/var/lib/skl/ops.log");
//   auto server = *ProvenanceServer::Start(std::move(rec.service),
//                                          {.oplog = rec.oplog.get()});
//
//   // A read replica: bootstrap from the primary's snapshot, serve reads,
//   // tail the op stream until stopped.
//   auto replica = *ReadReplica::Start("127.0.0.1", primary_port, {});
//   // ... point read clients at replica->port() ...
//
// A ReadReplica owns a read-only ProvenanceServer plus one tailer thread.
// The tailer bootstraps via kSnapshotFetch (a snapshot containing every op
// up to some LSN L), then streams kSubscribe batches from L onward,
// applying each op under the server's shared service lock. Apply is
// idempotent (snapshot and stream may overlap at L) and strictly in LSN
// order. A kSnapshotBarrier in the stream means the primary's registry was
// replaced wholesale (kLoadSnapshot) — the replica re-bootstraps from a
// fresh snapshot instead of replaying across it. A dead primary just makes
// the tailer retry with backoff; the replica keeps answering reads at its
// last applied LSN throughout (the failover property the CI smoke step
// kills a primary to check).
#ifndef SKL_REPLICATION_REPLICATOR_H_
#define SKL_REPLICATION_REPLICATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/core/provenance_service.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/replication/oplog.h"

namespace skl {

/// Applies one shipped log op to a service: AddRun/ImportRun restore the
/// primary's record under the primary's id (idempotent), RemoveRun removes
/// it (an id already gone is OK — replay idempotence), a barrier is a
/// no-op here (the tailer and RecoverPrimary give it meaning). The service
/// must not have an op-log attached, or removals would re-append.
Status ApplyLogOp(ProvenanceService& service, const LogOp& op);

/// What RecoverPrimary rebuilt: the service at the state the log proves,
/// and the log reopened for appending (already attached to the service).
struct RecoveredPrimary {
  ProvenanceService service;
  std::unique_ptr<OpLog> oplog;
};

/// Rebuilds a crashed primary from its op-log: replays the header's
/// specification + scheme, applies every surviving entry in LSN order
/// (chaining through snapshot barriers by loading the recorded snapshot
/// file), truncates any torn tail, and reopens the log for appending. The
/// recovered service answers exactly like the pre-crash one for every op
/// that was acked (append-before-ack), and its next RunId continues the
/// pre-crash sequence.
Result<RecoveredPrimary> RecoverPrimary(
    const std::string& oplog_path,
    ProvenanceService::Options service_options = {},
    OpLog::Options oplog_options = {});

/// ReadReplica knobs. (Namespace-scope so it can be brace-defaulted;
/// spelled ReadReplica::Options at call sites.)
struct ReadReplicaOptions {
  /// Where the replica's read-only server listens.
  std::string listen_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 picks an ephemeral port
  unsigned num_threads = 4;
  /// Tailer sleep between empty kSubscribe polls.
  unsigned poll_interval_ms = 2;
  /// Max ops per kSubscribe batch (the server additionally caps at 4096).
  size_t max_batch = 512;
  /// Runtime knobs for the replica's own service instance.
  ProvenanceService::Options service;
  /// Connection options for the tailer's client (backoff knobs govern the
  /// reconnect cadence after the primary drops).
  ProvenanceClient::Options client;
  /// Trace id stamped on every frame the replica sends the primary
  /// (bootstrap kSnapshotFetch and kSubscribe tails), so replica traffic
  /// is attributable in the primary's slow-query log and metrics
  /// (docs/OBSERVABILITY.md). 0 = untraced.
  uint64_t trace_id = 0;
};

/// A read-only replica of one primary. Non-movable (the tailer thread
/// holds `this`), so Start returns it behind a unique_ptr.
class ReadReplica {
 public:
  using Options = ReadReplicaOptions;

  /// Synchronous bootstrap: connects to the primary, fetches a snapshot,
  /// starts the read-only server at that state, then spawns the tailer.
  /// On return the replica is serving — possibly behind the primary, which
  /// is what read-LSN tokens are for.
  static Result<std::unique_ptr<ReadReplica>> Start(
      const std::string& primary_host, uint16_t primary_port,
      Options options = {});

  /// Stops the tailer and shuts the server down (idempotent).
  ~ReadReplica();
  void Stop();

  ReadReplica(const ReadReplica&) = delete;
  ReadReplica& operator=(const ReadReplica&) = delete;

  /// The replica server's bound port (resolves Options::port = 0).
  uint16_t port() const { return server_->port(); }
  ProvenanceServer& server() { return *server_; }

  /// Last LSN applied to the replica's service.
  uint64_t applied_lsn() const {
    return applied_.load(std::memory_order_acquire);
  }

  /// Blocks until applied_lsn() >= lsn (polling), the tailer records an
  /// error, or the timeout elapses (Unavailable naming both LSNs).
  Status WaitForLsn(uint64_t lsn, uint64_t timeout_ms) const;

  /// The tailer's most recent error (transport errors clear once a retry
  /// succeeds; apply errors are terminal and stop the tailer).
  Status tail_error() const;

 private:
  ReadReplica(Options options, std::string primary_host,
              uint16_t primary_port);

  void TailLoop();
  /// Fetches a fresh snapshot and swaps it in (the kSnapshotBarrier path);
  /// advances applied_ to the snapshot's LSN.
  Status Rebootstrap();
  void RecordError(Status status);

  Options options_;
  std::string primary_host_;
  uint16_t primary_port_ = 0;

  std::unique_ptr<ProvenanceServer> server_;
  std::optional<ProvenanceClient> client_;  ///< tailer-owned connection

  std::thread tail_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> applied_{0};

  mutable std::mutex err_mu_;
  Status tail_error_;  // guarded by err_mu_
  bool stopped_ = false;  ///< Stop() ran (guarded by err_mu_)
};

}  // namespace skl

#endif  // SKL_REPLICATION_REPLICATOR_H_
