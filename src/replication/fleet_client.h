// FleetClient: one logical client over a primary + N read replicas
// (docs/REPLICATION.md).
//
//   auto fleet = *FleetClient::Connect(
//       "127.0.0.1:7001", {"127.0.0.1:7002", "127.0.0.1:7003"});
//   RunId id = *fleet.AddRun(run);           // pinned to the primary
//   bool dep = *fleet.Reaches(id, v, w);     // load-balanced over replicas
//
// Writes always go to the primary. Every successful write's ack LSN is
// pinned as the read-LSN token on every replica connection, so subsequent
// reads are read-your-writes: a replica that has not caught up to the
// write answers kRetryAt and the fleet client moves on to the next
// endpoint, falling back to the primary (which by construction always has
// every acked write). Reads rotate round-robin across the replicas;
// endpoints that answer kUnavailable are likewise skipped for that call.
// With no replicas configured, everything goes to the primary — a drop-in
// ProvenanceClient.
//
// Like ProvenanceClient, a FleetClient is NOT thread-safe; open one per
// thread.
#ifndef SKL_REPLICATION_FLEET_CLIENT_H_
#define SKL_REPLICATION_FLEET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/provenance_service.h"
#include "src/net/client.h"

namespace skl {

class FleetClient {
 public:
  using Options = ProvenanceClientOptions;

  /// Connects to every endpoint ("host:port" each) up front; any endpoint
  /// failing to connect fails the whole call (a fleet with silently
  /// missing members would skew reads toward the survivors unnoticed).
  static Result<FleetClient> Connect(const std::string& primary,
                                     const std::vector<std::string>& replicas,
                                     const Options& options = {});

  FleetClient(FleetClient&&) = default;
  FleetClient& operator=(FleetClient&&) = default;

  // -------------------------------------------- writes (primary-pinned) --

  Result<RunId> AddRun(const Run& run);
  Result<RunId> AddRunXml(std::string_view run_xml);
  Result<RunId> ImportRun(const std::vector<uint8_t>& blob);
  Status RemoveRun(RunId id);

  // ----------------------------------------- reads (replica-balanced) --

  Result<bool> Reaches(RunId id, VertexId v, VertexId w);
  Result<std::vector<bool>> ReachesBatch(RunId id,
                                         std::span<const VertexPair> pairs);
  Result<bool> DependsOn(RunId id, DataItemId x, DataItemId x_from);
  Result<std::vector<bool>> DependsOnBatch(RunId id,
                                           std::span<const ItemPair> pairs);
  Result<bool> ModuleDependsOnData(RunId id, VertexId v, DataItemId x);
  Result<bool> DataDependsOnModule(RunId id, DataItemId x, VertexId v);
  Result<std::vector<uint8_t>> ExportRun(RunId id);
  Result<std::vector<RunId>> ListRuns();
  Result<RunStats> Stats(RunId id);

  // ------------------------------------------------------------ fleet --

  /// The primary's ack LSN of the last successful write through this
  /// client (the token replica reads are pinned at).
  uint64_t last_write_lsn() const { return primary_.last_write_lsn(); }

  ProvenanceClient& primary() { return primary_; }
  size_t num_replicas() const { return replicas_.size(); }
  ProvenanceClient& replica(size_t i) { return replicas_[i]; }

 private:
  FleetClient(ProvenanceClient primary,
              std::vector<ProvenanceClient> replicas)
      : primary_(std::move(primary)), replicas_(std::move(replicas)) {}

  /// After a successful write: pin the primary's ack LSN on every replica
  /// connection (monotone, so an older ack never lowers it).
  void PinWriteLsn();

  /// Runs a read against the replicas round-robin, skipping endpoints that
  /// answer kRetryAt (behind the pinned LSN) or kUnavailable (down), and
  /// falls back to the primary. Any other error is the query's real answer
  /// and is returned from the endpoint that produced it.
  template <typename Fn>
  auto ReadOp(Fn&& fn) -> decltype(fn(std::declval<ProvenanceClient&>())) {
    const size_t n = replicas_.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t at = (next_replica_ + i) % n;
      auto result = fn(replicas_[at]);
      const StatusCode code =
          result.ok() ? StatusCode::kOk : result.status().code();
      if (code == StatusCode::kRetryAt || code == StatusCode::kUnavailable) {
        continue;  // behind or down: try the next endpoint
      }
      next_replica_ = (at + 1) % n;
      return result;
    }
    return fn(primary_);
  }

  ProvenanceClient primary_;
  std::vector<ProvenanceClient> replicas_;
  size_t next_replica_ = 0;
};

}  // namespace skl

#endif  // SKL_REPLICATION_FLEET_CLIENT_H_
