#include "src/replication/fleet_client.h"

#include <utility>

namespace skl {

Result<FleetClient> FleetClient::Connect(
    const std::string& primary, const std::vector<std::string>& replicas,
    const Options& options) {
  SKL_ASSIGN_OR_RETURN(ProvenanceClient primary_client,
                       ProvenanceClient::ConnectHostPort(primary, options));
  std::vector<ProvenanceClient> replica_clients;
  replica_clients.reserve(replicas.size());
  for (const std::string& endpoint : replicas) {
    Result<ProvenanceClient> client =
        ProvenanceClient::ConnectHostPort(endpoint, options);
    if (!client.ok()) {
      return Status::Unavailable("replica '" + endpoint +
                                 "': " + client.status().message());
    }
    replica_clients.push_back(std::move(*client));
  }
  return FleetClient(std::move(primary_client), std::move(replica_clients));
}

void FleetClient::PinWriteLsn() {
  const uint64_t lsn = primary_.last_write_lsn();
  for (ProvenanceClient& replica : replicas_) replica.SetReadLsn(lsn);
}

Result<RunId> FleetClient::AddRun(const Run& run) {
  SKL_ASSIGN_OR_RETURN(RunId id, primary_.AddRun(run));
  PinWriteLsn();
  return id;
}

Result<RunId> FleetClient::AddRunXml(std::string_view run_xml) {
  SKL_ASSIGN_OR_RETURN(RunId id, primary_.AddRunXml(run_xml));
  PinWriteLsn();
  return id;
}

Result<RunId> FleetClient::ImportRun(const std::vector<uint8_t>& blob) {
  SKL_ASSIGN_OR_RETURN(RunId id, primary_.ImportRun(blob));
  PinWriteLsn();
  return id;
}

Status FleetClient::RemoveRun(RunId id) {
  SKL_RETURN_NOT_OK(primary_.RemoveRun(id));
  PinWriteLsn();
  return Status::OK();
}

Result<bool> FleetClient::Reaches(RunId id, VertexId v, VertexId w) {
  return ReadOp(
      [&](ProvenanceClient& client) { return client.Reaches(id, v, w); });
}

Result<std::vector<bool>> FleetClient::ReachesBatch(
    RunId id, std::span<const VertexPair> pairs) {
  return ReadOp([&](ProvenanceClient& client) {
    return client.ReachesBatch(id, pairs);
  });
}

Result<bool> FleetClient::DependsOn(RunId id, DataItemId x,
                                    DataItemId x_from) {
  return ReadOp([&](ProvenanceClient& client) {
    return client.DependsOn(id, x, x_from);
  });
}

Result<std::vector<bool>> FleetClient::DependsOnBatch(
    RunId id, std::span<const ItemPair> pairs) {
  return ReadOp([&](ProvenanceClient& client) {
    return client.DependsOnBatch(id, pairs);
  });
}

Result<bool> FleetClient::ModuleDependsOnData(RunId id, VertexId v,
                                              DataItemId x) {
  return ReadOp([&](ProvenanceClient& client) {
    return client.ModuleDependsOnData(id, v, x);
  });
}

Result<bool> FleetClient::DataDependsOnModule(RunId id, DataItemId x,
                                              VertexId v) {
  return ReadOp([&](ProvenanceClient& client) {
    return client.DataDependsOnModule(id, x, v);
  });
}

Result<std::vector<uint8_t>> FleetClient::ExportRun(RunId id) {
  return ReadOp(
      [&](ProvenanceClient& client) { return client.ExportRun(id); });
}

Result<std::vector<RunId>> FleetClient::ListRuns() {
  return ReadOp([&](ProvenanceClient& client) { return client.ListRuns(); });
}

Result<RunStats> FleetClient::Stats(RunId id) {
  return ReadOp([&](ProvenanceClient& client) { return client.Stats(id); });
}

}  // namespace skl
