// Mutable directed multigraph with stable edge ids and O(1) amortized edge
// deletion. This is the working representation used by the plan-recovery
// algorithm (Section 5 of the paper), which repeatedly collapses fork/loop
// copies into "special" edges: parallel special edges can coexist, so a
// simple adjacency set is not enough.
#ifndef SKL_GRAPH_MULTIGRAPH_H_
#define SKL_GRAPH_MULTIGRAPH_H_

#include <cstdint>
#include <vector>

#include "src/graph/digraph.h"

namespace skl {

using EdgeId = uint32_t;
inline constexpr EdgeId kInvalidEdge = UINT32_MAX;

/// Edge payload: endpoints plus a caller-defined tag (the plan builder tags
/// special edges with the hierarchy node they stand for).
struct MultiEdge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  int32_t tag = -1;
  bool alive = false;
};

class Multigraph {
 public:
  Multigraph() = default;
  /// Creates a multigraph with `n` vertices and no edges.
  explicit Multigraph(VertexId n);
  /// Creates a multigraph holding a copy of `g`'s edges (tag = -1).
  explicit Multigraph(const Digraph& g);

  VertexId num_vertices() const { return static_cast<VertexId>(out_.size()); }
  /// Number of currently alive edges.
  size_t num_alive_edges() const { return alive_edges_; }
  /// Total edge slots ever allocated (dead ids are not reused).
  size_t edge_capacity() const { return edges_.size(); }

  VertexId AddVertex();

  /// Adds an edge and returns its id.
  EdgeId AddEdge(VertexId u, VertexId v, int32_t tag = -1);

  /// Marks an edge dead. Dead edges are skipped by iteration helpers.
  void RemoveEdge(EdgeId e);

  bool IsAlive(EdgeId e) const { return edges_[e].alive; }
  const MultiEdge& edge(EdgeId e) const { return edges_[e]; }

  /// Alive out-edge ids of u. Compacts the internal list lazily.
  const std::vector<EdgeId>& OutEdges(VertexId u);
  /// Alive in-edge ids of u. Compacts the internal list lazily.
  const std::vector<EdgeId>& InEdges(VertexId u);

  /// Alive out-degree / in-degree (compacting).
  size_t OutDegree(VertexId u) { return OutEdges(u).size(); }
  size_t InDegree(VertexId u) { return InEdges(u).size(); }

 private:
  void CompactOut(VertexId u);
  void CompactIn(VertexId u);

  std::vector<MultiEdge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  size_t alive_edges_ = 0;
};

}  // namespace skl

#endif  // SKL_GRAPH_MULTIGRAPH_H_
