#include "src/graph/algorithms.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/check.h"

namespace skl {

Result<std::vector<VertexId>> TopologicalSort(const Digraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> indeg(n);
  for (VertexId v = 0; v < n; ++v) {
    indeg[v] = static_cast<uint32_t>(g.InDegree(v));
  }
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  size_t head = 0;
  while (head < queue.size()) {
    VertexId u = queue[head++];
    order.push_back(u);
    for (VertexId v : g.OutNeighbors(u)) {
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  if (order.size() != n) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return order;
}

bool IsAcyclic(const Digraph& g) { return TopologicalSort(g).ok(); }

bool Reaches(const Digraph& g, VertexId u, VertexId v) {
  if (u == v) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> queue{u};
  seen[u] = true;
  size_t head = 0;
  while (head < queue.size()) {
    VertexId x = queue[head++];
    for (VertexId y : g.OutNeighbors(x)) {
      if (y == v) return true;
      if (!seen[y]) {
        seen[y] = true;
        queue.push_back(y);
      }
    }
  }
  return false;
}

bool ReachesDfs(const Digraph& g, VertexId u, VertexId v) {
  if (u == v) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{u};
  seen[u] = true;
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    for (VertexId y : g.OutNeighbors(x)) {
      if (y == v) return true;
      if (!seen[y]) {
        seen[y] = true;
        stack.push_back(y);
      }
    }
  }
  return false;
}

DynamicBitset ReachableFrom(const Digraph& g, VertexId u) {
  DynamicBitset reach(g.num_vertices());
  std::vector<VertexId> stack{u};
  reach.Set(u);
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    for (VertexId y : g.OutNeighbors(x)) {
      if (!reach.Test(y)) {
        reach.Set(y);
        stack.push_back(y);
      }
    }
  }
  return reach;
}

std::vector<DynamicBitset> TransitiveClosure(const Digraph& g) {
  auto topo = TopologicalSort(g);
  SKL_CHECK_MSG(topo.ok(), "TransitiveClosure requires an acyclic graph");
  const VertexId n = g.num_vertices();
  std::vector<DynamicBitset> closure(n);
  for (VertexId v = 0; v < n; ++v) closure[v] = DynamicBitset(n);
  // Process in reverse topological order so successors are complete.
  const auto& order = topo.value();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VertexId u = *it;
    closure[u].Set(u);
    for (VertexId v : g.OutNeighbors(u)) {
      closure[u].UnionWith(closure[v]);
    }
  }
  return closure;
}

std::vector<VertexId> Sources(const Digraph& g) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.InDegree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> Sinks(const Digraph& g) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) == 0) out.push_back(v);
  }
  return out;
}

bool InducedWeaklyConnected(const Digraph& g,
                            const std::vector<bool>& in_set) {
  SKL_DCHECK(in_set.size() == g.num_vertices());
  VertexId start = kInvalidVertex;
  size_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) {
      if (start == kInvalidVertex) start = v;
      ++total;
    }
  }
  if (total <= 1) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{start};
  seen[start] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    auto visit = [&](VertexId y) {
      if (in_set[y] && !seen[y]) {
        seen[y] = true;
        ++visited;
        stack.push_back(y);
      }
    };
    for (VertexId y : g.OutNeighbors(x)) visit(y);
    for (VertexId y : g.InNeighbors(x)) visit(y);
  }
  return visited == total;
}

bool HasParallelEdges(const Digraph& g) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(g.num_edges() * 2);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
      if (!seen.insert(key).second) return true;
    }
  }
  return false;
}

}  // namespace skl
