#include "src/graph/digraph.h"

#include <algorithm>

#include "src/common/check.h"

namespace skl {

void DigraphBuilder::AddEdge(VertexId u, VertexId v) {
  VertexId needed = std::max(u, v) + 1;
  if (needed > num_vertices_) num_vertices_ = needed;
  edges_.emplace_back(u, v);
}

Digraph DigraphBuilder::Build() && {
  Digraph g;
  g.num_vertices_ = num_vertices_;
  const size_t m = edges_.size();
  g.out_offsets_.assign(num_vertices_ + 1, 0);
  g.in_offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (VertexId i = 0; i < num_vertices_; ++i) {
    g.out_offsets_[i + 1] += g.out_offsets_[i];
    g.in_offsets_[i + 1] += g.in_offsets_[i];
  }
  g.heads_.resize(m);
  g.tails_.resize(m);
  std::vector<uint32_t> out_pos(g.out_offsets_.begin(),
                                g.out_offsets_.end() - 1);
  std::vector<uint32_t> in_pos(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.heads_[out_pos[u]++] = v;
    g.tails_[in_pos[v]++] = u;
  }
  return g;
}

std::span<const VertexId> Digraph::OutNeighbors(VertexId u) const {
  SKL_DCHECK(u < num_vertices_);
  return {heads_.data() + out_offsets_[u],
          heads_.data() + out_offsets_[u + 1]};
}

std::span<const VertexId> Digraph::InNeighbors(VertexId u) const {
  SKL_DCHECK(u < num_vertices_);
  return {tails_.data() + in_offsets_[u], tails_.data() + in_offsets_[u + 1]};
}

size_t Digraph::OutDegree(VertexId u) const {
  SKL_DCHECK(u < num_vertices_);
  return out_offsets_[u + 1] - out_offsets_[u];
}

size_t Digraph::InDegree(VertexId u) const {
  SKL_DCHECK(u < num_vertices_);
  return in_offsets_[u + 1] - in_offsets_[u];
}

bool Digraph::HasEdge(VertexId u, VertexId v) const {
  for (VertexId w : OutNeighbors(u)) {
    if (w == v) return true;
  }
  return false;
}

std::vector<std::pair<VertexId, VertexId>> Digraph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices_; ++u) {
    for (VertexId v : OutNeighbors(u)) out.emplace_back(u, v);
  }
  return out;
}

}  // namespace skl
