#include "src/graph/multigraph.h"

#include "src/common/check.h"

namespace skl {

Multigraph::Multigraph(VertexId n) : out_(n), in_(n) {}

Multigraph::Multigraph(const Digraph& g) : Multigraph(g.num_vertices()) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) AddEdge(u, v);
  }
}

VertexId Multigraph::AddVertex() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<VertexId>(out_.size() - 1);
}

EdgeId Multigraph::AddEdge(VertexId u, VertexId v, int32_t tag) {
  SKL_DCHECK(u < num_vertices() && v < num_vertices());
  EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(MultiEdge{u, v, tag, true});
  out_[u].push_back(e);
  in_[v].push_back(e);
  ++alive_edges_;
  return e;
}

void Multigraph::RemoveEdge(EdgeId e) {
  SKL_DCHECK(e < edges_.size());
  if (edges_[e].alive) {
    edges_[e].alive = false;
    --alive_edges_;
  }
}

void Multigraph::CompactOut(VertexId u) {
  auto& list = out_[u];
  size_t w = 0;
  for (EdgeId e : list) {
    if (edges_[e].alive) list[w++] = e;
  }
  list.resize(w);
}

void Multigraph::CompactIn(VertexId u) {
  auto& list = in_[u];
  size_t w = 0;
  for (EdgeId e : list) {
    if (edges_[e].alive) list[w++] = e;
  }
  list.resize(w);
}

const std::vector<EdgeId>& Multigraph::OutEdges(VertexId u) {
  SKL_DCHECK(u < num_vertices());
  CompactOut(u);
  return out_[u];
}

const std::vector<EdgeId>& Multigraph::InEdges(VertexId u) {
  SKL_DCHECK(u < num_vertices());
  CompactIn(u);
  return in_[u];
}

}  // namespace skl
