// Immutable directed graph in CSR (compressed sparse row) form, with a
// mutable builder. Specification graphs and run graphs are stored this way;
// the plan-recovery algorithm converts a run to a mutable Multigraph instead.
#ifndef SKL_GRAPH_DIGRAPH_H_
#define SKL_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace skl {

using VertexId = uint32_t;
inline constexpr VertexId kInvalidVertex = UINT32_MAX;

/// Append-only edge list used to assemble a Digraph.
class DigraphBuilder {
 public:
  DigraphBuilder() = default;
  /// Pre-declares `n` vertices (0..n-1); more can be added via AddVertex.
  explicit DigraphBuilder(VertexId n) : num_vertices_(n) {}

  /// Adds a vertex and returns its id.
  VertexId AddVertex() { return num_vertices_++; }

  /// Adds a directed edge u -> v. Vertices are created implicitly if needed.
  void AddEdge(VertexId u, VertexId v);

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Builds the CSR representation. Duplicate edges are kept as-is (callers
  /// that require simple graphs should validate separately).
  class Digraph Build() &&;

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Immutable CSR digraph with both out- and in-adjacency.
class Digraph {
 public:
  Digraph() = default;

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return heads_.size(); }

  /// Successors of u (targets of out-edges).
  std::span<const VertexId> OutNeighbors(VertexId u) const;
  /// Predecessors of u (sources of in-edges).
  std::span<const VertexId> InNeighbors(VertexId u) const;

  size_t OutDegree(VertexId u) const;
  size_t InDegree(VertexId u) const;

  /// True if the edge u -> v exists (linear scan of u's out list).
  bool HasEdge(VertexId u, VertexId v) const;

  /// All edges as (source, target) pairs in an unspecified stable order.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

 private:
  friend class DigraphBuilder;

  VertexId num_vertices_ = 0;
  // Out CSR.
  std::vector<uint32_t> out_offsets_;  // size num_vertices_+1
  std::vector<VertexId> heads_;        // targets
  // In CSR.
  std::vector<uint32_t> in_offsets_;
  std::vector<VertexId> tails_;  // sources
};

}  // namespace skl

#endif  // SKL_GRAPH_DIGRAPH_H_
