// Graph algorithms shared by the workflow model, the labeling schemes and the
// test oracles: topological sort, reachability (single query and all-pairs),
// connectivity, and source/sink analysis.
#ifndef SKL_GRAPH_ALGORITHMS_H_
#define SKL_GRAPH_ALGORITHMS_H_

#include <vector>

#include "src/common/bitset.h"
#include "src/common/status.h"
#include "src/graph/digraph.h"

namespace skl {

/// Kahn topological sort. Returns InvalidArgument if g has a cycle.
Result<std::vector<VertexId>> TopologicalSort(const Digraph& g);

/// True iff g is acyclic.
bool IsAcyclic(const Digraph& g);

/// BFS reachability query: is there a (possibly empty) path from u to v?
/// Reflexive: Reaches(g, u, u) is true.
bool Reaches(const Digraph& g, VertexId u, VertexId v);

/// DFS (iterative) variant of Reaches, used by the DFS skeleton scheme.
bool ReachesDfs(const Digraph& g, VertexId u, VertexId v);

/// Set of vertices reachable from u, including u.
DynamicBitset ReachableFrom(const Digraph& g, VertexId u);

/// Full reflexive transitive closure: row u = vertices reachable from u.
/// O(n*m/64) via bitset DP over a reverse topological order.
/// Precondition: g is acyclic.
std::vector<DynamicBitset> TransitiveClosure(const Digraph& g);

/// Vertices with in-degree 0 / out-degree 0.
std::vector<VertexId> Sources(const Digraph& g);
std::vector<VertexId> Sinks(const Digraph& g);

/// True iff the subgraph induced by `vertices` (markers over g's vertex set)
/// is weakly connected, treating edges as undirected and only edges with both
/// endpoints marked. An empty set is considered connected.
bool InducedWeaklyConnected(const Digraph& g, const std::vector<bool>& in_set);

/// True iff g contains a duplicate (u,v) edge.
bool HasParallelEdges(const Digraph& g);

}  // namespace skl

#endif  // SKL_GRAPH_ALGORITHMS_H_
