#include "src/baseline/tree_transform.h"

#include <algorithm>

#include "src/common/bit_codec.h"
#include "src/graph/algorithms.h"

namespace skl {

Status TreeTransformLabeling::Build(const Digraph& g) {
  auto sources = Sources(g);
  if (sources.size() != 1) {
    return Status::InvalidArgument("tree transform requires a single source");
  }
  if (!IsAcyclic(g)) {
    return Status::InvalidArgument("tree transform requires a DAG");
  }
  num_vertices_ = g.num_vertices();
  occurrences_.assign(num_vertices_, {});
  first_pre_.assign(num_vertices_, 0);
  first_max_.assign(num_vertices_, 0);
  tree_size_ = 0;

  struct Frame {
    VertexId vertex;
    size_t child = 0;
    uint32_t pre = 0;
    uint32_t max_pre = 0;
    bool is_first = false;
  };
  std::vector<Frame> stack;
  uint32_t counter = 0;

  auto push = [&](VertexId v) -> Status {
    if (++tree_size_ > max_tree_nodes_) {
      return Status::CapacityExceeded(
          "unfolded tree exceeds the configured node cap (" +
          std::to_string(max_tree_nodes_) + ")");
    }
    Frame f;
    f.vertex = v;
    f.pre = counter++;
    f.max_pre = f.pre;
    f.is_first = occurrences_[v].empty();
    occurrences_[v].push_back(f.pre);
    stack.push_back(f);
    return Status::OK();
  };

  SKL_RETURN_NOT_OK(push(sources[0]));
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto kids = g.OutNeighbors(f.vertex);
    if (f.child < kids.size()) {
      VertexId c = kids[f.child++];
      SKL_RETURN_NOT_OK(push(c));
    } else {
      if (f.is_first) {
        first_pre_[f.vertex] = f.pre;
        first_max_[f.vertex] = f.max_pre;
      }
      uint32_t done_max = f.max_pre;
      stack.pop_back();
      if (!stack.empty()) {
        stack.back().max_pre = std::max(stack.back().max_pre, done_max);
      }
    }
  }
  // Occurrence lists are filled in preorder, hence already sorted.
  return Status::OK();
}

bool TreeTransformLabeling::Reaches(VertexId u, VertexId v) const {
  if (u == v) return true;
  uint32_t lo = first_pre_[u];
  uint32_t hi = first_max_[u];
  const auto& occ = occurrences_[v];
  auto it = std::lower_bound(occ.begin(), occ.end(), lo);
  return it != occ.end() && *it <= hi;
}

size_t TreeTransformLabeling::TotalLabelBits() const {
  size_t bits_per = BitsForCount(tree_size_ + 1);
  size_t total = 0;
  for (const auto& occ : occurrences_) {
    total += (occ.size() + 1) * bits_per;  // occurrences + one subtree bound
  }
  return total;
}

}  // namespace skl
