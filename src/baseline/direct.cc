#include "src/baseline/direct.h"

// Header-only logic; this translation unit pins the vtable-ish pieces and
// keeps the build layout uniform (one .cc per module).
