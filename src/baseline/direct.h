// Baselines that label the run graph directly, ignoring the specification:
// TCM-on-run and BFS-on-run (the paper's comparison points in Figures 15-17).
// Any SpecLabelingScheme works, since those schemes operate on plain DAGs.
#ifndef SKL_BASELINE_DIRECT_H_
#define SKL_BASELINE_DIRECT_H_

#include <memory>

#include "src/common/status.h"
#include "src/speclabel/scheme.h"
#include "src/workflow/run.h"

namespace skl {

/// A reachability index built directly over one run.
class DirectRunLabeling {
 public:
  explicit DirectRunLabeling(SpecSchemeKind kind)
      : scheme_(CreateSpecScheme(kind)) {}

  Status Build(const Run& run) { return scheme_->Build(run.graph()); }

  bool Reaches(VertexId u, VertexId v) const {
    return scheme_->Reaches(u, v);
  }

  const SpecLabelingScheme& scheme() const { return *scheme_; }

 private:
  std::unique_ptr<SpecLabelingScheme> scheme_;
};

}  // namespace skl

#endif  // SKL_BASELINE_DIRECT_H_
