// Tree-transform baseline in the style of Heinis & Alonso (SIGMOD'08) [8]:
// unfold the run DAG into a tree by duplicating every vertex once per
// distinct root path prefix, interval-label the tree, and answer u ~> v by
// checking whether any occurrence of v falls inside the interval of u's
// first occurrence. Correct, constant-ish query time, but the unfolded tree
// can be exponentially larger than the DAG — which is exactly the weakness
// the paper's Section 2 points out and our ablation quantifies. A node cap
// turns the blow-up into a CapacityExceeded error instead of an OOM.
#ifndef SKL_BASELINE_TREE_TRANSFORM_H_
#define SKL_BASELINE_TREE_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/run.h"

namespace skl {

class TreeTransformLabeling {
 public:
  /// `max_tree_nodes` caps the unfolding (default 8M).
  explicit TreeTransformLabeling(size_t max_tree_nodes = size_t{8} << 20)
      : max_tree_nodes_(max_tree_nodes) {}

  /// Unfolds and labels. Requires a single-source DAG (true for runs).
  Status Build(const Digraph& g);
  Status Build(const Run& run) { return Build(run.graph()); }

  /// Reflexive reachability.
  bool Reaches(VertexId u, VertexId v) const;

  /// Size of the unfolded tree (the blow-up factor's numerator).
  size_t tree_size() const { return tree_size_; }
  /// Total label bits: every occurrence stores one preorder number, plus one
  /// subtree bound for the first occurrence.
  size_t TotalLabelBits() const;

 private:
  size_t max_tree_nodes_ = 0;
  size_t tree_size_ = 0;
  VertexId num_vertices_ = 0;
  /// Sorted preorder numbers of each vertex's tree occurrences.
  std::vector<std::vector<uint32_t>> occurrences_;
  /// Interval [pre, max_pre] of the first occurrence.
  std::vector<uint32_t> first_pre_;
  std::vector<uint32_t> first_max_;
};

}  // namespace skl

#endif  // SKL_BASELINE_TREE_TRANSFORM_H_
