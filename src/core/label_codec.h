// Bit-exact serialization of run labels. Each label is packed at exactly the
// paper's width: 3 * ceil(log2 n_T^+) bits of context encoding plus
// ceil(log2 n_G) bits of origin reference; a small fixed header records the
// widths. This makes the Lemma 4.7 label-length bound measurable on real
// bytes, and lets labels live in external storage (the provenance database)
// independent of the in-memory structures.
#ifndef SKL_CORE_LABEL_CODEC_H_
#define SKL_CORE_LABEL_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/core/run_labeling.h"

namespace skl {

/// Serialized label block: header + packed labels.
struct EncodedLabels {
  std::vector<uint8_t> bytes;
  /// Bits per label actually used (excluding the shared header).
  uint32_t bits_per_label = 0;
  uint32_t num_labels = 0;
};

/// Packs all labels of a run labeling.
EncodedLabels EncodeLabels(const RunLabeling& labeling);

/// Unpacks labels; the result is usable with RunLabeling::Decide plus a
/// skeleton scheme.
Result<std::vector<RunLabel>> DecodeLabels(const EncodedLabels& encoded);

/// Decodes from raw bytes (e.g. read back from storage).
Result<std::vector<RunLabel>> DecodeLabels(const std::vector<uint8_t>& bytes);

}  // namespace skl

#endif  // SKL_CORE_LABEL_CODEC_H_
