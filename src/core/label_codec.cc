#include "src/core/label_codec.h"

#include "src/common/bit_codec.h"

namespace skl {

EncodedLabels EncodeLabels(const RunLabeling& labeling) {
  EncodedLabels out;
  const uint32_t n = labeling.num_vertices();
  const int q_bits = static_cast<int>(labeling.context_bits() / 3);
  const int o_bits = static_cast<int>(labeling.origin_bits());
  BitWriter writer;
  writer.WriteVarint(n);
  writer.WriteVarint(static_cast<uint64_t>(q_bits));
  writer.WriteVarint(static_cast<uint64_t>(o_bits));
  for (uint32_t v = 0; v < n; ++v) {
    const RunLabel& l = labeling.label(v);
    // Positions are 1-based and <= n_T^+ <= 2^q_bits; store them 0-based so
    // they fit exactly.
    writer.Write(l.q1 - 1, q_bits);
    writer.Write(l.q2 - 1, q_bits);
    writer.Write(l.q3 - 1, q_bits);
    writer.Write(l.origin, o_bits);
  }
  out.bits_per_label = static_cast<uint32_t>(3 * q_bits + o_bits);
  out.num_labels = n;
  out.bytes = writer.Finish();
  return out;
}

Result<std::vector<RunLabel>> DecodeLabels(const EncodedLabels& encoded) {
  return DecodeLabels(encoded.bytes);
}

Result<std::vector<RunLabel>> DecodeLabels(
    const std::vector<uint8_t>& bytes) {
  BitReader reader(bytes);
  uint64_t n, q_bits, o_bits;
  SKL_RETURN_NOT_OK(reader.ReadVarint(&n));
  SKL_RETURN_NOT_OK(reader.ReadVarint(&q_bits));
  SKL_RETURN_NOT_OK(reader.ReadVarint(&o_bits));
  if (q_bits == 0 || q_bits > 32 || o_bits == 0 || o_bits > 32) {
    return Status::ParseError("corrupt label header");
  }
  std::vector<RunLabel> labels(n);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t q1, q2, q3, origin;
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q1));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q2));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q3));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(o_bits), &origin));
    labels[v] = RunLabel{static_cast<uint32_t>(q1 + 1),
                         static_cast<uint32_t>(q2 + 1),
                         static_cast<uint32_t>(q3 + 1),
                         static_cast<VertexId>(origin)};
  }
  return labels;
}

}  // namespace skl
