#include "src/core/query_cache.h"

#include <algorithm>
#include <bit>

#include "src/common/random.h"

namespace skl {

namespace {

constexpr uint64_t kGenerationShift = 3;
constexpr uint64_t kKindShift = 1;

uint64_t PackPair(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

uint64_t PackData(uint64_t generation, QueryKind kind, bool answer) {
  return (generation << kGenerationShift) |
         (static_cast<uint64_t>(kind) << kKindShift) | (answer ? 1u : 0u);
}

}  // namespace

QueryCache::QueryCache(size_t slots)
    : mask_(std::bit_ceil(std::clamp<size_t>(slots, 1, size_t{1} << 30)) -
            1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

size_t QueryCache::IndexOf(uint64_t run, uint64_t pair,
                           QueryKind kind) const {
  // Mix64: consecutive vertex ids must spread across the table instead of
  // clustering in one probe neighborhood.
  const uint64_t h =
      Mix64(run ^ Mix64(pair ^ (static_cast<uint64_t>(kind) << 62)));
  return static_cast<size_t>(h) & mask_;
}

bool QueryCache::Lookup(uint64_t generation, uint64_t run, uint32_t src,
                        uint32_t dst, QueryKind kind, bool* answer) const {
  const uint64_t pair = PackPair(src, dst);
  const Slot& slot = slots_[IndexOf(run, pair, kind)];
  const uint64_t seq = slot.seq.load(std::memory_order_acquire);
  if (seq & 1) return false;  // writer mid-publish
  const uint64_t key_run = slot.key_run.load(std::memory_order_relaxed);
  const uint64_t key_pair = slot.key_pair.load(std::memory_order_relaxed);
  const uint64_t data = slot.data.load(std::memory_order_relaxed);
  // The fence orders the three field loads before the sequence re-check; an
  // unchanged even sequence proves no writer published between them, so the
  // (key, data) pair below is one consistent entry, never a mix of two.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != seq) return false;
  if (key_run != run || key_pair != pair) return false;
  if (data != PackData(generation, kind, data & 1)) return false;
  *answer = (data & 1) != 0;
  return true;
}

void QueryCache::Insert(uint64_t generation, uint64_t run, uint32_t src,
                        uint32_t dst, QueryKind kind, bool answer) {
  const uint64_t pair = PackPair(src, dst);
  Slot& slot = slots_[IndexOf(run, pair, kind)];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq & 1) return;  // another writer owns the slot; shed the insert
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    return;
  }
  // The release fence keeps the field stores from hoisting above the odd
  // sequence: readers that can see any of these stores also see seq odd
  // (or the later even), and discard the read.
  std::atomic_thread_fence(std::memory_order_release);
  slot.key_run.store(run, std::memory_order_relaxed);
  slot.key_pair.store(pair, std::memory_order_relaxed);
  slot.data.store(PackData(generation, kind, answer),
                  std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

}  // namespace skl
