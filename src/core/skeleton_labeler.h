// Facade tying the pieces together (paper Algorithm 2): label the
// specification once with a chosen scheme, then label any number of
// conforming runs.
//
//   SkeletonLabeler labeler(&spec, SpecSchemeKind::kTcm);
//   SKL_RETURN_NOT_OK(labeler.Init());
//   auto labeling = labeler.LabelRun(run);            // raw graph
//   auto labeling2 = labeler.LabelRunWithPlan(run, plan, origin);  // logs
//   labeling->Reaches(v, w);
//
// Deprecated as an entry point: new code should use skl::ProvenanceService
// (src/core/provenance_service.h), which owns the spec + scheme, keeps a
// registry of runs behind RunId handles, and adds thread-safe queries and
// blob persistence. SkeletonLabeler remains for single-run embedded uses
// and as the building block the service wraps.
#ifndef SKL_CORE_SKELETON_LABELER_H_
#define SKL_CORE_SKELETON_LABELER_H_

#include <memory>

#include "src/core/plan_builder.h"
#include "src/core/run_labeling.h"
#include "src/speclabel/scheme.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"

namespace skl {

class SkeletonLabeler {
 public:
  /// `spec` must outlive the labeler and every labeling it produces.
  SkeletonLabeler(const Specification* spec, SpecSchemeKind scheme_kind);
  SkeletonLabeler(const Specification* spec,
                  std::unique_ptr<SpecLabelingScheme> scheme);

  /// Builds the skeleton labels (once; amortized over all runs).
  Status Init();

  /// Labels a raw run graph: recovers plan + context (Section 5), then
  /// assigns (q1,q2,q3,origin) labels.
  Result<RunLabeling> LabelRun(const Run& run) const;

  /// Labels a run whose plan + context are already known (e.g. from the
  /// workflow engine's log, as Taverna provides).
  Result<RunLabeling> LabelRunWithPlan(const Run& run,
                                       const ExecutionPlan& plan,
                                       std::vector<VertexId> origin) const;

  const Specification& spec() const { return *spec_; }
  const SpecLabelingScheme& scheme() const { return *scheme_; }
  bool initialized() const { return initialized_; }

 private:
  const Specification* spec_;
  std::unique_ptr<SpecLabelingScheme> scheme_;
  bool initialized_ = false;
};

}  // namespace skl

#endif  // SKL_CORE_SKELETON_LABELER_H_
