#include "src/core/orders.h"

namespace skl {

namespace {

/// One preorder traversal; `reverse_kind` selects which - node type has its
/// children visited right-to-left (-1 for none).
void Traverse(const ExecutionPlan& plan, int reverse_kind,
              std::vector<uint32_t>* out) {
  out->assign(plan.num_nodes(), 0);
  uint32_t counter = 0;
  std::vector<PlanNodeId> stack{kPlanRoot};
  while (!stack.empty()) {
    PlanNodeId x = stack.back();
    stack.pop_back();
    const PlanNode& node = plan.node(x);
    if (IsPlusNode(node.type) && node.num_context_vertices > 0) {
      (*out)[x] = ++counter;  // positions are 1-based
    }
    // Push children so they pop in the desired order: a stack pops in
    // reverse push order, so push right-to-left for a left-to-right visit.
    if (static_cast<int>(node.type) == reverse_kind) {
      for (PlanNodeId c : node.children) stack.push_back(c);
    } else {
      for (auto it = node.children.rbegin(); it != node.children.rend();
           ++it) {
        stack.push_back(*it);
      }
    }
  }
}

}  // namespace

ContextEncoding GenerateThreeOrders(const ExecutionPlan& plan) {
  ContextEncoding enc;
  // O1: plain preorder. O2: reverse F- children. O3: reverse L- children.
  Traverse(plan, -1, &enc.q1);
  Traverse(plan, static_cast<int>(PlanNodeType::kFMinus), &enc.q2);
  Traverse(plan, static_cast<int>(PlanNodeType::kLMinus), &enc.q3);
  enc.num_nonempty_plus = plan.num_nonempty_plus();
  return enc;
}

}  // namespace skl
