#include "src/core/run_registry.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <utility>

#include "src/common/random.h"

namespace skl {

RunRegistry::RunRegistry(const Options& options)
    : shard_mask_(std::bit_ceil(std::clamp<size_t>(options.num_shards, 1,
                                                   kMaxShards)) -
                  1),
      cache_slots_(options.cache_slots),
      shards_(std::make_unique<Shard[]>(shard_mask_ + 1)) {
  if (cache_slots_ > 0) {
    for (size_t s = 0; s <= shard_mask_; ++s) {
      shards_[s].cache = std::make_unique<QueryCache>(cache_slots_);
    }
  }
}

size_t RunRegistry::ShardIndexOf(uint64_t id) const {
  // Mix64: ids are allocated sequentially, so without mixing a
  // power-of-two mask would stripe consecutive runs over shards in
  // lockstep — fine — but any id-structure correlation in a workload
  // (e.g. querying every 8th run) would then hammer one shard.
  return static_cast<size_t>(Mix64(id)) & shard_mask_;
}

RunRegistry::ReadHandle RunRegistry::AcquireRead(uint64_t id) const {
  const Shard& shard = ShardOf(id);
  ReadHandle handle;
  handle.lock_ = std::shared_lock(shard.mu);
  auto it = shard.runs.find(id);
  if (it == shard.runs.end()) {
    handle.lock_.unlock();
    return handle;
  }
  handle.record_ = &it->second;
  handle.cache_ = shard.cache.get();
  handle.generation_ = shard.generation;
  handle.shard_hits_ = &shard.cache_hits;
  handle.shard_misses_ = &shard.cache_misses;
  return handle;
}

uint64_t RunRegistry::Publish(RunRecord record, bool invalidate) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = ShardOf(id);
  std::unique_lock lock(shard.mu);
  shard.runs.emplace(id, std::move(record));
  if (invalidate) ++shard.generation;
  return id;
}

std::vector<uint64_t> RunRegistry::PublishBatch(
    std::vector<RunRecord> records) {
  const size_t count = records.size();
  std::vector<uint64_t> ids;
  ids.reserve(count);
  if (count == 0) return ids;
  // One contiguous block keeps published ids ascending in batch order, the
  // contract callers (and the snapshot format) rely on.
  const uint64_t base = next_id_.fetch_add(count, std::memory_order_acq_rel);
  for (size_t i = 0; i < count; ++i) ids.push_back(base + i);
  // Group by shard so each writer lock is taken once per batch, not once
  // per run; queries on other shards are never blocked at all.
  std::vector<std::vector<size_t>> by_shard(shard_mask_ + 1);
  for (size_t i = 0; i < count; ++i) {
    by_shard[ShardIndexOf(ids[i])].push_back(i);
  }
  for (size_t s = 0; s <= shard_mask_; ++s) {
    if (by_shard[s].empty()) continue;
    std::unique_lock lock(shards_[s].mu);
    for (size_t i : by_shard[s]) {
      shards_[s].runs.emplace(ids[i], std::move(records[i]));
    }
  }
  return ids;
}

bool RunRegistry::Remove(uint64_t id) {
  Shard& shard = ShardOf(id);
  std::unique_lock lock(shard.mu);
  if (shard.runs.erase(id) == 0) return false;
  // O(1) invalidation: every cached answer in this shard is stamped with an
  // older generation and can no longer hit. No scan, no per-entry work.
  ++shard.generation;
  return true;
}

bool RunRegistry::Contains(uint64_t id) const {
  const Shard& shard = ShardOf(id);
  std::shared_lock lock(shard.mu);
  return shard.runs.find(id) != shard.runs.end();
}

size_t RunRegistry::size() const {
  size_t total = 0;
  for (size_t s = 0; s <= shard_mask_; ++s) {
    std::shared_lock lock(shards_[s].mu);
    total += shards_[s].runs.size();
  }
  return total;
}

std::vector<uint64_t> RunRegistry::ListIds() const {
  std::vector<uint64_t> ids;
  for (size_t s = 0; s <= shard_mask_; ++s) {
    std::shared_lock lock(shards_[s].mu);
    for (const auto& kv : shards_[s].runs) ids.push_back(kv.first);
  }
  // Shards partition ids by hash, so the concatenation interleaves; one
  // sort restores ascending (= registration) order.
  std::sort(ids.begin(), ids.end());
  return ids;
}

void RunRegistry::ForEach(
    const std::function<void(uint64_t, const RunRecord&)>& fn) const {
  for (size_t s = 0; s <= shard_mask_; ++s) {
    std::shared_lock lock(shards_[s].mu);
    for (const auto& kv : shards_[s].runs) fn(kv.first, kv.second);
  }
}

bool RunRegistry::Restore(uint64_t id, RunRecord record) {
  Shard& shard = ShardOf(id);
  std::unique_lock lock(shard.mu);
  return shard.runs.emplace(id, std::move(record)).second;
}

}  // namespace skl
