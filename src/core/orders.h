// Three-dimensional context encoding (paper Algorithm 1 and Lemma 4.5):
// three preorder traversals of the execution plan assign every nonempty
// + node positions (q1, q2, q3); O1 visits children left-to-right, O2
// reverses the children of F- nodes, O3 reverses the children of L- nodes.
// Comparing positions reveals whether the least common ancestor of two
// contexts is an F- node (O1/O2 disagree), an L- node (O1/O3 disagree) or a
// + node (all three agree).
#ifndef SKL_CORE_ORDERS_H_
#define SKL_CORE_ORDERS_H_

#include <cstdint>
#include <vector>

#include "src/core/execution_plan.h"

namespace skl {

/// Per-plan-node positions in the three total orders; 0 for - nodes and for
/// empty + nodes (which never serve as a context).
struct ContextEncoding {
  std::vector<uint32_t> q1;
  std::vector<uint32_t> q2;
  std::vector<uint32_t> q3;
  uint32_t num_nonempty_plus = 0;
};

/// Runs the three traversals (iterative; plans can be deep for long loop
/// chains... the L- chains are siblings, but nested loops still nest).
ContextEncoding GenerateThreeOrders(const ExecutionPlan& plan);

}  // namespace skl

#endif  // SKL_CORE_ORDERS_H_
