// SKL run labels (paper Algorithms 2 and 3): every run vertex carries its
// context encoding (q1, q2, q3) plus the identity of its origin, whose
// skeleton label is held by the specification's labeling scheme.
//
// Query semantics (Algorithm 3): for labels (q1,q2,q3,.) and (q1',q2',q3',.)
//   if (q2-q2')*(q3-q3') < 0: the contexts' LCA is an F- or L- node and the
//     answer is q1 < q1' && q3 > q3' (L- in serial order), else 0;
//   otherwise the LCA is a + node and the answer is the skeleton predicate on
//     the origins.
#ifndef SKL_CORE_RUN_LABELING_H_
#define SKL_CORE_RUN_LABELING_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/core/execution_plan.h"
#include "src/core/orders.h"
#include "src/speclabel/scheme.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"

namespace skl {

/// Label of one run vertex. The skeleton label itself is not duplicated per
/// vertex: `origin` indexes the scheme's label, exactly as the paper's
/// accounting assumes (log n_G bits to reference one of n_G skeleton labels).
struct RunLabel {
  uint32_t q1 = 0;
  uint32_t q2 = 0;
  uint32_t q3 = 0;
  VertexId origin = kInvalidVertex;
};

/// How two run vertices relate under the dependency order.
enum class RunRelationship {
  kEqual,      ///< same vertex
  kForward,    ///< v reaches w (w depends on v)
  kBackward,   ///< w reaches v
  kUnrelated,  ///< neither (parallel fork copies or incomparable branches)
};

const char* RunRelationshipName(RunRelationship r);

/// Immutable labeling of one run against a labeled specification.
class RunLabeling {
 public:
  /// Builds labels from an execution plan + context (either recovered by
  /// ConstructPlan or supplied by the workflow engine). `scheme` must outlive
  /// the labeling and be built over spec.graph().
  static Result<RunLabeling> FromPlan(const Specification& spec,
                                      const SpecLabelingScheme* scheme,
                                      const ExecutionPlan& plan,
                                      std::vector<VertexId> origin);

  const RunLabel& label(VertexId v) const { return labels_[v]; }
  const std::vector<RunLabel>& labels() const { return labels_; }
  VertexId num_vertices() const {
    return static_cast<VertexId>(labels_.size());
  }

  /// Algorithm 3: is there a path from v to w (reflexive)?
  bool Reaches(VertexId v, VertexId w) const {
    return Decide(labels_[v], labels_[w], *scheme_);
  }

  /// Variant reporting whether the skeleton predicate was consulted (the
  /// paper's "frequently answered by extended labels alone" observation).
  bool ReachesWithStats(VertexId v, VertexId w, bool* used_skeleton) const;

  /// Classifies the pair under the dependency order (two predicate
  /// evaluations at most; the F-/L- cases need only one).
  RunRelationship Relate(VertexId v, VertexId w) const;

  /// Pure label-vs-label predicate, usable on deserialized labels.
  static bool Decide(const RunLabel& a, const RunLabel& b,
                     const SpecLabelingScheme& scheme);

  /// Context-encoding bits per label: 3 * ceil(log2 n_T^+) where n_T^+ is
  /// the number of nonempty + nodes (paper Lemma 4.7).
  uint32_t context_bits() const { return context_bits_; }
  /// Origin-reference bits per label: ceil(log2 n_G).
  uint32_t origin_bits() const { return origin_bits_; }
  /// Total per-label bits, 3 log n_T^+ + log n_G.
  uint32_t label_bits() const { return context_bits_ + origin_bits_; }
  /// Number of nonempty + nodes in the plan.
  uint32_t num_nonempty_plus() const { return num_nonempty_plus_; }

  const SpecLabelingScheme& scheme() const { return *scheme_; }

 private:
  std::vector<RunLabel> labels_;
  const SpecLabelingScheme* scheme_ = nullptr;
  uint32_t context_bits_ = 0;
  uint32_t origin_bits_ = 0;
  uint32_t num_nonempty_plus_ = 0;
};

}  // namespace skl

#endif  // SKL_CORE_RUN_LABELING_H_
