// Persistent provenance store: what a workflow system would actually write
// to its provenance database after a run completes. Holds the bit-packed run
// labels (at the exact Lemma 4.7 width) plus the data-item catalog, serialized
// to a single self-describing binary blob. Queries need only the blob and the
// specification's skeleton scheme — the run graph itself can be discarded,
// which is the whole point of reachability labels.
//
// Layout: magic "SKLP", format version, encoded labels block (label_codec),
// then the catalog as varints (item count; per item: writer, reader count,
// readers).
#ifndef SKL_CORE_PROVENANCE_STORE_H_
#define SKL_CORE_PROVENANCE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/core/data_provenance.h"
#include "src/core/run_labeling.h"

namespace skl {

class ProvenanceStore {
 public:
  /// Captures a labeled run and (optionally) its data catalog.
  static ProvenanceStore Capture(const RunLabeling& labeling,
                                 const DataCatalog* catalog = nullptr);

  /// Serializes to a self-describing blob.
  std::vector<uint8_t> Serialize() const;

  /// Restores a store from a blob.
  static Result<ProvenanceStore> Deserialize(std::span<const uint8_t> bytes);
  static Result<ProvenanceStore> Deserialize(
      const std::vector<uint8_t>& bytes);

  VertexId num_vertices() const {
    return static_cast<VertexId>(labels_.size());
  }
  size_t num_items() const { return item_writers_.size(); }

  const RunLabel& label(VertexId v) const { return labels_[v]; }

  // The scheme-passing query overloads below are deprecated: re-passing the
  // scheme on every call is error-prone (nothing ties a blob to the scheme
  // it was labeled under). Prefer the service-bound queries on
  // skl::ProvenanceService, which hold the scheme once per specification;
  // these remain as the delegation target the service uses.

  /// Module-level reachability against a skeleton scheme built over the
  /// originating specification.
  /// Deprecated: prefer ProvenanceService::Reaches(RunId, v, w).
  bool Reaches(VertexId v, VertexId w,
               const SpecLabelingScheme& scheme) const {
    return RunLabeling::Decide(labels_[v], labels_[w], scheme);
  }

  /// Item-level dependency (paper Section 6): x depends on x_from.
  /// Deprecated: prefer ProvenanceService::DependsOn(RunId, x, x_from).
  Result<bool> DependsOn(DataItemId x, DataItemId x_from,
                         const SpecLabelingScheme& scheme) const;

  /// Did module execution v read data derived from item x?
  /// Deprecated: prefer ProvenanceService::ModuleDependsOnData.
  Result<bool> ModuleDependsOnData(VertexId v, DataItemId x,
                                   const SpecLabelingScheme& scheme) const;

  /// Is item x downstream of module execution v?
  /// Deprecated: prefer ProvenanceService::DataDependsOnModule.
  Result<bool> DataDependsOnModule(DataItemId x, VertexId v,
                                   const SpecLabelingScheme& scheme) const;

 private:
  std::vector<RunLabel> labels_;
  std::vector<VertexId> item_writers_;
  std::vector<std::vector<VertexId>> item_readers_;
};

}  // namespace skl

#endif  // SKL_CORE_PROVENANCE_STORE_H_
