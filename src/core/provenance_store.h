// Persistent provenance store: what a workflow system would actually write
// to its provenance database after a run completes. Holds the run labels in
// contiguous columnar arrays (one flat uint32 column per label component)
// plus the data-item catalog in CSR form, so batch queries are tight loops
// over flat memory. Serializes to a single self-describing binary blob;
// queries need only the blob and the specification's skeleton scheme — the
// run graph itself can be discarded, which is the whole point of
// reachability labels.
//
// Blob layout: magic "SKLP", format version, scheme tag (v2+), encoded
// labels block at the exact Lemma 4.7 bit width (label_codec), then the
// catalog as varints (item count; per item: writer, reader count, readers).
//
// Storage is either *owned* (one contiguous uint32 arena, built by
// Capture/Deserialize) or a *view* over externally owned columns (built by
// FromColumns, e.g. spans into an mmap'd snapshot); a view keeps its backing
// alive through a shared_ptr, so the mapping is released only when the last
// store viewing it is destroyed.
#ifndef SKL_CORE_PROVENANCE_STORE_H_
#define SKL_CORE_PROVENANCE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/data_provenance.h"
#include "src/core/run_labeling.h"

namespace skl {

class ProvenanceStore {
 public:
  ProvenanceStore() = default;
  ProvenanceStore(const ProvenanceStore& other) { *this = other; }
  ProvenanceStore& operator=(const ProvenanceStore& other);
  ProvenanceStore(ProvenanceStore&&) = default;
  ProvenanceStore& operator=(ProvenanceStore&&) = default;

  /// Captures a labeled run and (optionally) its data catalog. `scheme_tag`
  /// names the skeleton scheme the labels were produced under (the bundled
  /// SpecSchemeKind name); it is embedded in the blob so a later import can
  /// reject a blob paired with the wrong scheme. Empty means "unknown"
  /// (legacy v1 blobs) and is accepted everywhere.
  static ProvenanceStore Capture(const RunLabeling& labeling,
                                 const DataCatalog* catalog = nullptr,
                                 std::string_view scheme_tag = {});

  /// Wraps externally owned columns without copying. The spans must point
  /// into memory kept alive by `backing` (e.g. an mmap'd snapshot section);
  /// `reader_offsets` is the CSR offset column (size num_items() + 1, or
  /// empty when there are no items). All range validation is the caller's
  /// job — accessors index the spans directly.
  static ProvenanceStore FromColumns(std::span<const uint32_t> q1,
                                     std::span<const uint32_t> q2,
                                     std::span<const uint32_t> q3,
                                     std::span<const uint32_t> origin,
                                     std::span<const uint32_t> item_writers,
                                     std::span<const uint32_t> reader_offsets,
                                     std::span<const uint32_t> readers,
                                     std::string scheme_tag,
                                     std::shared_ptr<const void> backing);

  /// Serializes to a self-describing blob (current format: v2, tagged).
  std::vector<uint8_t> Serialize() const;

  /// Restores a store from a blob. Accepts v1 (untagged) and v2 (tagged)
  /// blobs; v1 restores with an empty scheme tag.
  static Result<ProvenanceStore> Deserialize(std::span<const uint8_t> bytes);
  static Result<ProvenanceStore> Deserialize(
      const std::vector<uint8_t>& bytes);

  VertexId num_vertices() const { return static_cast<VertexId>(q1_.size()); }
  size_t num_items() const { return item_writers_.size(); }

  RunLabel label(VertexId v) const {
    return RunLabel{q1_[v], q2_[v], q3_[v], origin_[v]};
  }

  // Flat label columns for batch loops (SIMD-friendly: one contiguous
  // uint32 array per component, indexed by vertex).
  std::span<const uint32_t> q1_column() const { return q1_; }
  std::span<const uint32_t> q2_column() const { return q2_; }
  std::span<const uint32_t> q3_column() const { return q3_; }
  std::span<const uint32_t> origin_column() const { return origin_; }

  // The store is pure data: label columns plus the catalog's writer/reader
  // lists. The scheme-passing query overloads that used to live here
  // (deprecated since the service landed) are gone; query through
  // skl::ProvenanceService (Reaches/DependsOn/...), which holds the scheme
  // once per specification and answers from these accessors. The blob's
  // scheme tag (below) is what ties a blob to the scheme it was labeled
  // under — importers reject a tag that names a different scheme.

  /// Execution that wrote item x. Precondition: x < num_items().
  VertexId item_writer(DataItemId x) const { return item_writers_[x]; }

  /// Executions that read item x. Precondition: x < num_items().
  std::span<const VertexId> item_readers(DataItemId x) const {
    return readers_.subspan(reader_offsets_[x],
                            reader_offsets_[x + 1] - reader_offsets_[x]);
  }

  /// Total reader entries across all items (the READERS column length).
  size_t num_reader_entries() const { return readers_.size(); }

  /// Name of the skeleton scheme these labels were produced under; empty
  /// for legacy (v1) blobs that predate the tag.
  const std::string& scheme_tag() const { return scheme_tag_; }

  /// True when the columns view externally owned memory (snapshot backing)
  /// rather than an owned arena.
  bool is_view() const { return backing_ != nullptr; }

 private:
  // Owned stores keep every column in one contiguous arena, in the fixed
  // order [q1 | q2 | q3 | origin | writers | offsets | readers]; views
  // point wherever the backing put them. Spans always describe the live
  // columns, whichever case we are in.
  void BindToArena(size_t n, size_t items, size_t readers_total);
  std::vector<uint32_t>& AllocateArena(size_t n, size_t items,
                                       size_t readers_total);

  std::span<const uint32_t> q1_, q2_, q3_, origin_;
  std::span<const uint32_t> item_writers_;
  std::span<const uint32_t> reader_offsets_;  // size num_items()+1, or empty
  std::span<const uint32_t> readers_;
  std::vector<uint32_t> arena_;            // owned storage; empty for views
  std::shared_ptr<const void> backing_;    // keeps a view's columns alive
  std::string scheme_tag_;
};

}  // namespace skl

#endif  // SKL_CORE_PROVENANCE_STORE_H_
