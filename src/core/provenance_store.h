// Persistent provenance store: what a workflow system would actually write
// to its provenance database after a run completes. Holds the bit-packed run
// labels (at the exact Lemma 4.7 width) plus the data-item catalog, serialized
// to a single self-describing binary blob. Queries need only the blob and the
// specification's skeleton scheme — the run graph itself can be discarded,
// which is the whole point of reachability labels.
//
// Layout: magic "SKLP", format version, encoded labels block (label_codec),
// then the catalog as varints (item count; per item: writer, reader count,
// readers).
#ifndef SKL_CORE_PROVENANCE_STORE_H_
#define SKL_CORE_PROVENANCE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/core/data_provenance.h"
#include "src/core/run_labeling.h"

namespace skl {

class ProvenanceStore {
 public:
  /// Captures a labeled run and (optionally) its data catalog.
  static ProvenanceStore Capture(const RunLabeling& labeling,
                                 const DataCatalog* catalog = nullptr);

  /// Serializes to a self-describing blob.
  std::vector<uint8_t> Serialize() const;

  /// Restores a store from a blob.
  static Result<ProvenanceStore> Deserialize(std::span<const uint8_t> bytes);
  static Result<ProvenanceStore> Deserialize(
      const std::vector<uint8_t>& bytes);

  VertexId num_vertices() const {
    return static_cast<VertexId>(labels_.size());
  }
  size_t num_items() const { return item_writers_.size(); }

  const RunLabel& label(VertexId v) const { return labels_[v]; }

  // The store is pure data: labels plus the catalog's writer/reader lists.
  // The scheme-passing query overloads that used to live here (deprecated
  // since the service landed) are gone — nothing ties a blob to the scheme
  // it was labeled under, so pairing the two is the service's job. Query
  // through skl::ProvenanceService (Reaches/DependsOn/...), which holds the
  // scheme once per specification and answers from these accessors.

  /// Execution that wrote item x. Precondition: x < num_items().
  VertexId item_writer(DataItemId x) const { return item_writers_[x]; }

  /// Executions that read item x. Precondition: x < num_items().
  std::span<const VertexId> item_readers(DataItemId x) const {
    return item_readers_[x];
  }

 private:
  std::vector<RunLabel> labels_;
  std::vector<VertexId> item_writers_;
  std::vector<std::vector<VertexId>> item_readers_;
};

}  // namespace skl

#endif  // SKL_CORE_PROVENANCE_STORE_H_
