// Bounded reachability result cache: an open-addressing table of
// generation-stamped query answers, shared by concurrent readers without any
// lock of its own. One instance lives inside each RunRegistry shard and
// memoizes the service-level boolean queries (Reaches / DependsOn /
// ModuleDependsOnData / DataDependsOnModule) keyed by
// (run, src, dst, kind).
//
// Invalidation is O(1) by construction: every entry is stamped with the
// owning shard's generation at insert time, and a lookup only hits when the
// stamp equals the shard's *current* generation. RemoveRun / ImportRun /
// LoadSnapshot bump the generation instead of scanning the table, so the
// whole shard's cache goes cold in one increment — the answering-under-
// updates discipline that tests/query_cache_test.cc proves differentially.
//
// Concurrency: lookups and inserts run under the shard's *shared* lock, so
// they race with each other by design. Each slot is a seqlock over
// individually-atomic words: a writer claims the slot by CAS-ing the
// sequence to odd, publishes the fields, and releases it even; a reader
// re-checks the sequence after reading the fields and treats any observed
// movement as a miss. A torn or half-written entry can therefore never be
// returned — the cache either answers exactly what a compute would, or
// misses. Losing an insert race just costs a future recompute; it is only a
// cache.
#ifndef SKL_CORE_QUERY_CACHE_H_
#define SKL_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace skl {

/// Which service query an entry answers; part of the cache key, so the same
/// (src, dst) pair can hold one answer per query family.
enum class QueryKind : uint8_t {
  kReaches = 0,
  kDependsOn = 1,
  kModuleData = 2,   ///< ModuleDependsOnData(v, x)
  kDataModule = 3,   ///< DataDependsOnModule(x, v)
};

class QueryCache {
 public:
  /// `slots` is rounded up to a power of two (minimum 1). Memory is
  /// 32 bytes per slot, allocated eagerly so the table never resizes (a
  /// resize would need a writer lock, which lookups must not take).
  explicit QueryCache(size_t slots);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Probes for a current-generation entry. On hit writes the cached
  /// answer to *answer and returns true; any mismatch — key, kind, stale
  /// generation, or a concurrent writer mid-publish — is a miss.
  bool Lookup(uint64_t generation, uint64_t run, uint32_t src, uint32_t dst,
              QueryKind kind, bool* answer) const;

  /// Publishes an answer, overwriting whatever occupied the slot. Skips
  /// silently if another writer holds the slot (caches shed load, they do
  /// not wait).
  void Insert(uint64_t generation, uint64_t run, uint32_t src, uint32_t dst,
              QueryKind kind, bool answer);

  size_t num_slots() const { return mask_ + 1; }

 private:
  /// One entry. `seq` odd = a writer is mid-publish. The key spans two
  /// words (run, src<<32|dst); kind and the boolean answer ride in `data`
  /// beside the generation stamp:  data = generation << 3 | kind << 1 |
  /// answer. Fields are individually atomic (no torn word) and the seqlock
  /// re-check makes the *set* consistent.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> key_run{0};
    std::atomic<uint64_t> key_pair{0};
    std::atomic<uint64_t> data{0};
  };

  size_t IndexOf(uint64_t run, uint64_t pair, QueryKind kind) const;

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace skl

#endif  // SKL_CORE_QUERY_CACHE_H_
