#include "src/core/skeleton_labeler.h"

#include <utility>

namespace skl {

SkeletonLabeler::SkeletonLabeler(const Specification* spec,
                                 SpecSchemeKind scheme_kind)
    : spec_(spec), scheme_(CreateSpecScheme(scheme_kind)) {}

SkeletonLabeler::SkeletonLabeler(const Specification* spec,
                                 std::unique_ptr<SpecLabelingScheme> scheme)
    : spec_(spec), scheme_(std::move(scheme)) {}

Status SkeletonLabeler::Init() {
  SKL_RETURN_NOT_OK(scheme_->Build(spec_->graph()));
  initialized_ = true;
  return Status::OK();
}

Result<RunLabeling> SkeletonLabeler::LabelRun(const Run& run) const {
  if (!initialized_) {
    return Status::InvalidArgument("SkeletonLabeler::Init() not called");
  }
  SKL_ASSIGN_OR_RETURN(RecoveredPlan recovered, ConstructPlan(*spec_, run));
  return RunLabeling::FromPlan(*spec_, scheme_.get(), recovered.plan,
                               std::move(recovered.origin));
}

Result<RunLabeling> SkeletonLabeler::LabelRunWithPlan(
    const Run& run, const ExecutionPlan& plan,
    std::vector<VertexId> origin) const {
  if (!initialized_) {
    return Status::InvalidArgument("SkeletonLabeler::Init() not called");
  }
  if (plan.num_run_vertices() != run.num_vertices()) {
    return Status::InvalidArgument("plan does not match the run");
  }
  return RunLabeling::FromPlan(*spec_, scheme_.get(), plan,
                               std::move(origin));
}

}  // namespace skl
