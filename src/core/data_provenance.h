// Data provenance labels (paper Section 6): data items flow over run edges;
// each item x is written by exactly one module Output(x) and read by a set of
// modules Inputs(x). The item label is the pair
//   ( phi(Output(x)), { phi(v) : v in Inputs(x) } )
// and dependency queries reduce to module reachability:
//   x depends on x'  iff  some v in Inputs(x') reaches Output(x);
//   x depends on module v iff v reaches Output(x);
//   module v depends on x iff some reader of x reaches v.
#ifndef SKL_CORE_DATA_PROVENANCE_H_
#define SKL_CORE_DATA_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/run_labeling.h"

namespace skl {

using DataItemId = uint32_t;
inline constexpr DataItemId kInvalidDataItem = UINT32_MAX;

/// The set of data items of one run, with their writer and reader modules.
/// Assembled either directly or from per-edge item annotations.
class DataCatalog {
 public:
  /// Declares an item written by `output`. Returns its id.
  DataItemId AddItem(VertexId output);

  /// Registers that `item` flows over an edge (Output(item) -> reader).
  /// Fails if a different writer was registered earlier (each data item is
  /// created by a unique module).
  Status AddFlow(DataItemId item, VertexId writer, VertexId reader);

  size_t size() const { return outputs_.size(); }
  VertexId OutputOf(DataItemId x) const { return outputs_[x]; }
  const std::vector<VertexId>& InputsOf(DataItemId x) const {
    return inputs_[x];
  }

  /// Max |Inputs(x)| (the paper's k; bounds label blow-up and query time).
  size_t MaxInputs() const;

 private:
  std::vector<VertexId> outputs_;
  std::vector<std::vector<VertexId>> inputs_;
};

/// Data labels over a labeled run.
class DataProvenance {
 public:
  /// Copies the module labels into per-item data labels. The labeling (and
  /// its skeleton scheme) must outlive the result.
  static Result<DataProvenance> Build(const RunLabeling* labeling,
                                      const DataCatalog& catalog);

  /// Does item x depend on item x_from (data flowed x_from ~> x)? Reflexive
  /// on modules: an item read and rewritten by the same module depends on it.
  bool DependsOn(DataItemId x, DataItemId x_from) const;

  /// Does item x depend on module v (is x downstream of v)?
  bool DataDependsOnModule(DataItemId x, VertexId v) const;

  /// Does module v depend on item x (did x flow into v)?
  bool ModuleDependsOnData(VertexId v, DataItemId x) const;

  /// Per-item label size in bits: (|Inputs(x)|+1) module labels.
  size_t LabelBits(DataItemId x) const;

  size_t num_items() const { return output_labels_.size(); }

 private:
  const RunLabeling* labeling_ = nullptr;
  std::vector<RunLabel> output_labels_;
  std::vector<std::vector<RunLabel>> input_labels_;
};

}  // namespace skl

#endif  // SKL_CORE_DATA_PROVENANCE_H_
