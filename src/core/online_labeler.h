// Online labeling of in-flight runs — the paper's Section 9 future-work
// direction ("label data as soon as it is generated ... enable provenance
// queries on intermediate results before the workflow completes").
//
// A workflow engine reports execution events as they happen:
//
//   OnlineLabeler ol(&spec, scheme);
//   ol.BeginExecution(f1);  // a fork/loop execution starts
//   ol.BeginCopy();         //   first copy
//   auto v = ol.ExecuteModule("align");
//   ...
//   ol.EndCopy();
//   ol.BeginCopy();         //   second (parallel or serial) copy
//   ...
//   ol.EndExecution();
//   bool dep = ol.Reaches(v1, v2);          // query mid-run
//   auto labeling = std::move(ol).Finish(); // O(1)-query labels at the end
//
// Mid-run queries cannot use the three-order encoding (positions keep
// shifting as the plan grows), so they walk the partial execution plan to
// the contexts' least common ancestor: O(plan depth) per query, with the
// same decision rules as Lemma 4.3/4.4. Finish() freezes the plan and
// produces a standard RunLabeling with constant-time queries.
//
// The event stream must be well-parenthesized (depth-first); engines that
// interleave parallel branches can partition their log per branch, which is
// exactly what Taverna-style logs provide.
//
// Deprecated as an entry point: new code should open a RunSession via
// skl::ProvenanceService::OpenSession (src/core/provenance_service.h),
// which wraps this class and Seal()s the finished run into the service's
// registry.
#ifndef SKL_CORE_ONLINE_LABELER_H_
#define SKL_CORE_ONLINE_LABELER_H_

#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/run_labeling.h"
#include "src/speclabel/scheme.h"
#include "src/workflow/specification.h"

namespace skl {

class OnlineLabeler {
 public:
  /// `spec` and `scheme` must outlive the labeler; `scheme` must already be
  /// built over spec.graph().
  OnlineLabeler(const Specification* spec, const SpecLabelingScheme* scheme);

  /// Starts an execution of the given fork/loop (a child, in T_G, of the
  /// subgraph whose copy is currently open).
  Status BeginExecution(HierNodeId subgraph);
  /// Starts the next copy of the currently open execution (serial order for
  /// loops; declaration order is irrelevant for forks).
  Status BeginCopy();
  Status EndCopy();
  Status EndExecution();

  /// Records one module execution inside the currently open copy; the
  /// module must be owned (Definition 9) by that copy's subgraph. Returns
  /// the new run vertex id, usable in queries immediately.
  Result<VertexId> ExecuteModule(std::string_view module_name);

  /// Mid-run reachability (reflexive): O(plan depth).
  bool Reaches(VertexId v, VertexId w) const;

  /// Number of module executions so far.
  VertexId num_vertices() const {
    return static_cast<VertexId>(context_of_.size());
  }

  /// Completes the run: every execution must be closed and every copy must
  /// have executed each nested fork/loop exactly once. Produces a standard
  /// constant-time-query labeling.
  Result<RunLabeling> Finish() &&;

 private:
  struct Frame {
    PlanNodeId node;
    bool is_copy;  // alternates: copy frames open execution frames
    std::vector<uint32_t> child_tally;  // executions seen, per T_G child
  };

  const Specification* spec_;
  const SpecLabelingScheme* scheme_;
  ExecutionPlan plan_;
  std::vector<PlanNodeId> context_of_;   // per run vertex
  std::vector<VertexId> origin_of_;      // per run vertex
  std::vector<int32_t> depth_of_node_;   // per plan node
  std::vector<uint32_t> serial_index_;   // position under the parent
  std::vector<Frame> stack_;
  bool finished_ = false;
};

}  // namespace skl

#endif  // SKL_CORE_ONLINE_LABELER_H_
