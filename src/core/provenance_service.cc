#include "src/core/provenance_service.h"

#include <mutex>
#include <string>

#include "src/core/plan_builder.h"

namespace skl {

namespace {

/// The catalog is captured verbatim into the store; reject out-of-range
/// vertices up front so store queries can index labels unchecked.
Status ValidateCatalog(const DataCatalog& catalog, VertexId num_vertices) {
  for (DataItemId x = 0; x < catalog.size(); ++x) {
    if (catalog.OutputOf(x) >= num_vertices) {
      return Status::InvalidArgument("catalog item " + std::to_string(x) +
                                     " written by unknown vertex");
    }
    for (VertexId r : catalog.InputsOf(x)) {
      if (r >= num_vertices) {
        return Status::InvalidArgument("catalog item " + std::to_string(x) +
                                       " read by unknown vertex");
      }
    }
  }
  return Status::OK();
}

}  // namespace

ProvenanceService::ProvenanceService(
    std::unique_ptr<const Specification> spec,
    std::unique_ptr<SpecLabelingScheme> scheme)
    : spec_(std::move(spec)),
      scheme_(std::move(scheme)),
      mu_(std::make_unique<std::shared_mutex>()) {}

Result<ProvenanceService> ProvenanceService::Create(
    Specification spec, SpecSchemeKind scheme_kind) {
  return Create(std::move(spec), CreateSpecScheme(scheme_kind));
}

Result<ProvenanceService> ProvenanceService::Create(
    Specification spec, std::unique_ptr<SpecLabelingScheme> scheme) {
  if (scheme == nullptr) {
    return Status::InvalidArgument("null labeling scheme");
  }
  auto owned_spec =
      std::make_unique<const Specification>(std::move(spec));
  SKL_RETURN_NOT_OK(scheme->Build(owned_spec->graph()));
  return ProvenanceService(std::move(owned_spec), std::move(scheme));
}

Result<RunId> ProvenanceService::AddRun(const Run& run,
                                        const DataCatalog* catalog) {
  SKL_ASSIGN_OR_RETURN(RecoveredPlan recovered, ConstructPlan(*spec_, run));
  return AddRunWithPlan(run, recovered.plan, std::move(recovered.origin),
                        catalog);
}

Result<RunId> ProvenanceService::AddRunWithPlan(const Run& run,
                                                const ExecutionPlan& plan,
                                                std::vector<VertexId> origin,
                                                const DataCatalog* catalog) {
  if (origin.size() != run.num_vertices()) {
    return Status::InvalidArgument("origin size does not match run");
  }
  SKL_ASSIGN_OR_RETURN(
      RunLabeling labeling,
      RunLabeling::FromPlan(*spec_, scheme_.get(), plan, std::move(origin)));
  return Register(labeling, catalog, /*imported=*/false);
}

RunSession ProvenanceService::OpenSession() {
  return RunSession(this, spec_.get(), scheme_.get());
}

Status ProvenanceService::RemoveRun(RunId id) {
  std::unique_lock lock(*mu_);
  if (runs_.erase(id.value()) == 0) {
    return Status::NotFound("unknown run id");
  }
  return Status::OK();
}

Result<RunId> ProvenanceService::Register(const RunLabeling& labeling,
                                          const DataCatalog* catalog,
                                          bool imported) {
  if (catalog != nullptr) {
    SKL_RETURN_NOT_OK(ValidateCatalog(*catalog, labeling.num_vertices()));
  }
  RunRecord record;
  record.store = ProvenanceStore::Capture(labeling, catalog);
  record.stats.num_vertices = labeling.num_vertices();
  record.stats.num_items = record.store.num_items();
  record.stats.label_bits = labeling.label_bits();
  record.stats.context_bits = labeling.context_bits();
  record.stats.origin_bits = labeling.origin_bits();
  record.stats.num_nonempty_plus = labeling.num_nonempty_plus();
  record.stats.imported = imported;

  std::unique_lock lock(*mu_);
  RunId id(next_id_++);
  runs_.emplace(id.value(), std::move(record));
  return id;
}

const ProvenanceService::RunRecord* ProvenanceService::FindLocked(
    RunId id) const {
  auto it = runs_.find(id.value());
  return it == runs_.end() ? nullptr : &it->second;
}

Result<bool> ProvenanceService::Reaches(RunId id, VertexId v,
                                        VertexId w) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  if (v >= record->stats.num_vertices || w >= record->stats.num_vertices) {
    return Status::InvalidArgument("vertex out of range for run");
  }
  return record->store.Reaches(v, w, *scheme_);
}

Result<std::vector<bool>> ProvenanceService::ReachesBatch(
    RunId id, std::span<const VertexPair> pairs) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  const VertexId n = record->stats.num_vertices;
  std::vector<bool> answers;
  answers.reserve(pairs.size());
  for (const auto& [v, w] : pairs) {
    if (v >= n || w >= n) {
      return Status::InvalidArgument("vertex out of range for run");
    }
    answers.push_back(record->store.Reaches(v, w, *scheme_));
  }
  return answers;
}

Result<bool> ProvenanceService::DependsOn(RunId id, DataItemId x,
                                          DataItemId x_from) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  return record->store.DependsOn(x, x_from, *scheme_);
}

Result<std::vector<bool>> ProvenanceService::DependsOnBatch(
    RunId id, std::span<const ItemPair> pairs) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  std::vector<bool> answers;
  answers.reserve(pairs.size());
  for (const auto& [x, x_from] : pairs) {
    SKL_ASSIGN_OR_RETURN(bool dep,
                         record->store.DependsOn(x, x_from, *scheme_));
    answers.push_back(dep);
  }
  return answers;
}

Result<bool> ProvenanceService::ModuleDependsOnData(RunId id, VertexId v,
                                                    DataItemId x) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  return record->store.ModuleDependsOnData(v, x, *scheme_);
}

Result<bool> ProvenanceService::DataDependsOnModule(RunId id, DataItemId x,
                                                    VertexId v) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  return record->store.DataDependsOnModule(x, v, *scheme_);
}

Result<std::vector<uint8_t>> ProvenanceService::ExportRun(RunId id) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  return record->store.Serialize();
}

Result<RunId> ProvenanceService::ImportRun(
    const std::vector<uint8_t>& blob) {
  SKL_ASSIGN_OR_RETURN(ProvenanceStore store,
                       ProvenanceStore::Deserialize(blob));
  // The blob must stem from a run of this service's specification: every
  // origin must name a spec vertex, or queries would index the scheme out
  // of range.
  const VertexId n_g = spec_->graph().num_vertices();
  for (VertexId v = 0; v < store.num_vertices(); ++v) {
    if (store.label(v).origin >= n_g) {
      return Status::InvalidArgument(
          "blob references spec vertex " +
          std::to_string(store.label(v).origin) +
          " unknown to this service's specification");
    }
  }
  RunRecord record;
  record.stats.num_vertices = store.num_vertices();
  record.stats.num_items = store.num_items();
  record.stats.imported = true;
  record.store = std::move(store);

  std::unique_lock lock(*mu_);
  RunId id(next_id_++);
  runs_.emplace(id.value(), std::move(record));
  return id;
}

bool ProvenanceService::Contains(RunId id) const {
  std::shared_lock lock(*mu_);
  return FindLocked(id) != nullptr;
}

size_t ProvenanceService::num_runs() const {
  std::shared_lock lock(*mu_);
  return runs_.size();
}

Result<RunStats> ProvenanceService::Stats(RunId id) const {
  std::shared_lock lock(*mu_);
  const RunRecord* record = FindLocked(id);
  if (record == nullptr) return Status::NotFound("unknown run id");
  return record->stats;
}

std::vector<RunId> ProvenanceService::ListRuns() const {
  std::shared_lock lock(*mu_);
  std::vector<RunId> ids;
  ids.reserve(runs_.size());
  for (const auto& kv : runs_) ids.push_back(RunId(kv.first));
  return ids;
}

Result<RunId> RunSession::Seal(const DataCatalog* catalog) && {
  SKL_ASSIGN_OR_RETURN(RunLabeling labeling, std::move(labeler_).Finish());
  return service_->Register(labeling, catalog, /*imported=*/false);
}

}  // namespace skl
