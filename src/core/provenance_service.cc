#include "src/core/provenance_service.h"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <string>

#include "src/common/stopwatch.h"
#include "src/core/plan_builder.h"
#include "src/replication/oplog.h"

namespace skl {

namespace {

/// The catalog is captured verbatim into the store; reject out-of-range
/// vertices up front so store queries can index labels unchecked.
Status ValidateCatalog(const DataCatalog& catalog, VertexId num_vertices) {
  for (DataItemId x = 0; x < catalog.size(); ++x) {
    if (catalog.OutputOf(x) >= num_vertices) {
      return Status::InvalidArgument("catalog item " + std::to_string(x) +
                                     " written by unknown vertex");
    }
    for (VertexId r : catalog.InputsOf(x)) {
      if (r >= num_vertices) {
        return Status::InvalidArgument("catalog item " + std::to_string(x) +
                                       " read by unknown vertex");
      }
    }
  }
  return Status::OK();
}

// Query logic over a store's bit-packed labels (+ catalog), formerly the
// scheme-passing ProvenanceStore overloads. It lives here because the
// service is the only holder of the scheme a store's labels were built
// under; nothing outside can pair the two incorrectly anymore.

bool StoreReaches(const ProvenanceStore& store, VertexId v, VertexId w,
                  const SpecLabelingScheme& scheme) {
  return RunLabeling::Decide(store.label(v), store.label(w), scheme);
}

Result<bool> StoreDependsOn(const ProvenanceStore& store, DataItemId x,
                            DataItemId x_from,
                            const SpecLabelingScheme& scheme) {
  if (x >= store.num_items() || x_from >= store.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  // Paper Section 6: x depends on x_from iff some reader of x_from reaches
  // the execution that wrote x.
  const RunLabel out = store.label(store.item_writer(x));
  for (VertexId r : store.item_readers(x_from)) {
    if (RunLabeling::Decide(store.label(r), out, scheme)) return true;
  }
  return false;
}

Result<bool> StoreModuleDependsOnData(const ProvenanceStore& store,
                                      VertexId v, DataItemId x,
                                      const SpecLabelingScheme& scheme) {
  if (x >= store.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  if (v >= store.num_vertices()) {
    return Status::InvalidArgument("unknown vertex");
  }
  for (VertexId r : store.item_readers(x)) {
    if (RunLabeling::Decide(store.label(r), store.label(v), scheme)) {
      return true;
    }
  }
  return false;
}

Result<bool> StoreDataDependsOnModule(const ProvenanceStore& store,
                                      DataItemId x, VertexId v,
                                      const SpecLabelingScheme& scheme) {
  if (x >= store.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  if (v >= store.num_vertices()) {
    return Status::InvalidArgument("unknown vertex");
  }
  return RunLabeling::Decide(store.label(v),
                             store.label(store.item_writer(x)), scheme);
}

/// The one memoize shape behind every boolean query: probe the shard's
/// cache under the read lock the caller already holds, recompute via
/// `compute` on a miss, publish the answer stamped with the generation the
/// caller saw. Stale stamps (a Remove/Import/swap bumped the shard since)
/// can never hit, so a cached answer is always exactly what the recompute
/// would produce — the property tests/query_cache_test.cc proves
/// differentially. Preconditions (record found, ids in range) are the
/// caller's; `compute` must not fail.
template <typename Compute>
bool Memoized(const RunRegistry::ReadHandle& handle, uint64_t run,
              uint32_t src, uint32_t dst, QueryKind kind,
              std::atomic<uint64_t>& hits, std::atomic<uint64_t>& misses,
              const Compute& compute) {
  QueryCache* cache = handle.cache();
  if (cache == nullptr) return compute();
  bool answer = false;
  if (cache->Lookup(handle.generation(), run, src, dst, kind, &answer)) {
    hits.fetch_add(1, std::memory_order_relaxed);
    handle.shard_cache_hits()->fetch_add(1, std::memory_order_relaxed);
    return answer;
  }
  misses.fetch_add(1, std::memory_order_relaxed);
  handle.shard_cache_misses()->fetch_add(1, std::memory_order_relaxed);
  answer = compute();
  cache->Insert(handle.generation(), run, src, dst, kind, answer);
  return answer;
}

}  // namespace

ProvenanceService::ProvenanceService(
    std::unique_ptr<const Specification> spec,
    std::unique_ptr<SpecLabelingScheme> scheme, Options options)
    : epochs_(std::make_unique<std::deque<SpecEpoch>>()),
      head_(std::make_unique<std::atomic<const SpecEpoch*>>(nullptr)),
      epoch_mu_(std::make_unique<std::mutex>()),
      options_(options),
      counters_(std::make_unique<Counters>()),
      registry_(std::make_unique<RunRegistry>(RunRegistry::Options{
          .num_shards = options.num_shards,
          .cache_slots = options.cache_slots})),
      metrics_(std::make_unique<MetricsRegistry>()),
      pool_mu_(std::make_unique<std::mutex>()) {
  // Only a scheme whose name round-trips through the kind parser can be
  // rebuilt for a later epoch (and snapshotted); remember the verdict so
  // ApplySpecDelta can refuse caller-constructed schemes cleanly.
  Result<SpecSchemeKind> kind = ParseSpecSchemeKind(scheme->name());
  if (kind.ok()) {
    bundled_scheme_ = true;
    scheme_kind_ = *kind;
  }
  epochs_->push_back(
      SpecEpoch{1, std::move(spec), std::move(scheme), SpecDelta{}});
  head_->store(&epochs_->back(), std::memory_order_release);
  RegisterServiceMetrics();
}

void ProvenanceService::RegisterServiceMetrics() {
  labeling_hist_ = metrics_->AddHistogram(
      "skl_service_labeling_us",
      "Microseconds spent building a run's labeling (plan recovery, label "
      "assignment, catalog validation, record capture)");
  relabel_hist_ = metrics_->AddHistogram(
      "skl_spec_relabel_us",
      "Microseconds spent relabeling the skeleton for a spec delta "
      "(incremental over the dirty region, or a full rebuild under "
      "Options::full_rebuild_on_delta)");
  // The current spec epoch as a render-time gauge; head_ sits behind a
  // unique_ptr, so the captured address survives service moves.
  const std::atomic<const SpecEpoch*>* head = head_.get();
  metrics_->AddCallbackGauge(
      "skl_spec_epoch",
      "Current spec epoch (1 at creation, +1 per applied spec delta)", "",
      [head] {
        const SpecEpoch* entry = head->load(std::memory_order_acquire);
        return entry != nullptr ? entry->number : 0;
      });
  // Per-shard cache tallies as callback gauges: the shards already keep
  // relaxed atomics (bumped on the query path), so scrape time just reads
  // them. The captured registry address is stable — it sits behind a
  // unique_ptr in this movable service.
  const RunRegistry* reg = registry_.get();
  for (size_t s = 0; s < reg->num_shards(); ++s) {
    metrics_->AddCallbackGauge(
        "skl_cache_shard_hits", "Query-cache hits served by this shard",
        "shard=\"" + std::to_string(s) + "\"",
        [reg, s] { return reg->shard_cache_hits(s); });
  }
  for (size_t s = 0; s < reg->num_shards(); ++s) {
    metrics_->AddCallbackGauge(
        "skl_cache_shard_misses", "Query-cache misses taken by this shard",
        "shard=\"" + std::to_string(s) + "\"",
        [reg, s] { return reg->shard_cache_misses(s); });
  }
}

size_t ProvenanceService::shard_of(RunId id) const {
  return registry_->ShardIndexFor(id.value());
}

Result<ProvenanceService> ProvenanceService::Create(
    Specification spec, SpecSchemeKind scheme_kind, Options options) {
  return Create(std::move(spec), CreateSpecScheme(scheme_kind), options);
}

Result<ProvenanceService> ProvenanceService::Create(
    Specification spec, std::unique_ptr<SpecLabelingScheme> scheme,
    Options options) {
  if (scheme == nullptr) {
    return Status::InvalidArgument("null labeling scheme");
  }
  auto owned_spec =
      std::make_unique<const Specification>(std::move(spec));
  SKL_RETURN_NOT_OK(scheme->Build(owned_spec->graph()));
  return ProvenanceService(std::move(owned_spec), std::move(scheme),
                           options);
}

Result<RunId> ProvenanceService::AddRun(const Run& run,
                                        const DataCatalog* catalog) {
  // Capture the head epoch once: a delta landing mid-call must not split
  // the run between two schemes.
  const SpecEpoch* at = &head_epoch_entry();
  SKL_ASSIGN_OR_RETURN(RunRecord record,
                       BuildRecord(run, /*plan=*/nullptr, {}, catalog, at));
  return Publish(std::move(record));
}

Result<RunId> ProvenanceService::AddRunWithPlan(const Run& run,
                                                const ExecutionPlan& plan,
                                                std::vector<VertexId> origin,
                                                const DataCatalog* catalog) {
  const SpecEpoch* at = &head_epoch_entry();
  SKL_ASSIGN_OR_RETURN(
      RunRecord record,
      BuildRecord(run, &plan, std::move(origin), catalog, at));
  return Publish(std::move(record));
}

Result<RunRecord> ProvenanceService::BuildRecord(
    const Run& run, const ExecutionPlan* plan, std::vector<VertexId> origin,
    const DataCatalog* catalog, const SpecEpoch* at) const {
  // All of this runs outside any lock (and concurrently on pool workers for
  // the bulk paths): it only reads the immutable epoch spec and scheme.
  const auto labeling_start = std::chrono::steady_clock::now();
  RecoveredPlan recovered;
  if (plan == nullptr) {
    SKL_ASSIGN_OR_RETURN(recovered, ConstructPlan(*at->spec, run));
    plan = &recovered.plan;
    origin = std::move(recovered.origin);
  }
  if (origin.size() != run.num_vertices()) {
    return Status::InvalidArgument("origin size does not match run");
  }
  SKL_ASSIGN_OR_RETURN(RunLabeling labeling,
                       RunLabeling::FromPlan(*at->spec, at->scheme.get(),
                                             *plan, std::move(origin)));
  if (catalog != nullptr) {
    SKL_RETURN_NOT_OK(ValidateCatalog(*catalog, labeling.num_vertices()));
  }
  RunRecord record = CaptureRecord(labeling, catalog, /*imported=*/false, at);
  labeling_hist_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - labeling_start)
          .count()));
  return record;
}

RunRecord ProvenanceService::CaptureRecord(const RunLabeling& labeling,
                                           const DataCatalog* catalog,
                                           bool imported,
                                           const SpecEpoch* at) const {
  RunRecord record;
  record.store =
      ProvenanceStore::Capture(labeling, catalog, at->scheme->name());
  record.stats.num_vertices = labeling.num_vertices();
  record.stats.num_items = record.store.num_items();
  record.stats.label_bits = labeling.label_bits();
  record.stats.context_bits = labeling.context_bits();
  record.stats.origin_bits = labeling.origin_bits();
  record.stats.num_nonempty_plus = labeling.num_nonempty_plus();
  record.stats.imported = imported;
  record.stats.epoch = at->number;
  record.spec = at->spec.get();
  record.scheme = at->scheme.get();
  return record;
}

Result<RunId> ProvenanceService::Publish(RunRecord record, bool invalidate) {
  LogOp op;
  if (oplog_ != nullptr) {
    // Serialize before the registry takes ownership of the record; the op
    // carries the exact stats and blob a replica restores bit-identically.
    op.kind = record.stats.imported ? LogOp::Kind::kImportRun
                                    : LogOp::Kind::kAddRun;
    op.stats = record.stats;
    op.blob = record.store.Serialize();
  }
  RunId id(registry_->Publish(std::move(record), invalidate));
  counters_->runs_ingested.fetch_add(1, std::memory_order_relaxed);
  if (oplog_ != nullptr) {
    op.run_id = id.value();
    Result<uint64_t> appended = oplog_->Append(std::move(op));
    if (!appended.ok()) {
      // Published locally but not logged: acking success would break the
      // append-before-ack contract, so surface the divergence instead.
      return Status::Internal(
          "run " + std::to_string(id.value()) +
          " was registered but its op-log append failed (" +
          appended.status().message() +
          "); the service is ahead of its replication log");
    }
  }
  return id;
}

ThreadPool& ProvenanceService::Pool() {
  std::unique_lock lock(*pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::Resolve(options_.num_threads));
  }
  return *pool_;
}

std::vector<Result<RunId>> ProvenanceService::BulkIngest(
    size_t count, const std::function<Result<RunRecord>(size_t)>& build) {
  if (count == 0) return {};  // keep empty batches from starting the pool
  counters_->bulk_batches.fetch_add(1, std::memory_order_relaxed);

  // Phase 1: label every run concurrently, no lock held. Each worker owns
  // slot i exclusively; the future handshake publishes it to this thread.
  // Unwind discipline: tasks queued on the long-lived member pool reference
  // this frame's records/abort/build, so this function must not unwind (or
  // rethrow from futures) until every task has finished — hence the Submit
  // guard below, wait() instead of get(), and slot normalization on this
  // thread where an allocation failure can no longer dangle anything.
  std::vector<std::optional<Result<RunRecord>>> records(count);
  std::atomic<bool> abort{false};
  const bool fail_fast = options_.fail_fast;
  ThreadPool& pool = Pool();
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  try {
    for (size_t i = 0; i < count; ++i) {
      futures.push_back(pool.Submit([&, i] {
        if (abort.load(std::memory_order_relaxed)) {
          records[i] = Status::Cancelled("batch aborted by earlier failure");
          return;
        }
        try {
          records[i] = build(i);
        } catch (const std::exception& e) {
          try {
            records[i] = Status::Internal(
                std::string("bulk ingestion task threw: ") + e.what());
          } catch (...) {
            // Message allocation failed too; the empty slot is normalized
            // to an Internal status after the batch drains.
          }
        } catch (...) {
        }
        if (fail_fast && (!records[i] || !(*records[i]).ok())) {
          abort.store(true, std::memory_order_relaxed);
        }
      }));
    }
  } catch (...) {
    // Submit itself failed (allocation): tell queued tasks to bail and
    // drain them before unwinding.
    abort.store(true, std::memory_order_relaxed);
    for (std::future<void>& f : futures) f.wait();
    throw;
  }
  // wait(), not get(): a stored exception (e.g. bad_alloc escaping the
  // Cancelled-status construction) must not rethrow while siblings run.
  for (std::future<void>& f : futures) f.wait();
  for (std::optional<Result<RunRecord>>& slot : records) {
    if (!slot) slot = Status::Internal("bulk ingestion task threw");
  }

  std::vector<Result<RunId>> results;
  results.reserve(count);
  if (fail_fast) {
    // All-or-nothing: any failure voids the whole batch, including runs
    // that were already labeled successfully.
    bool any_failed = false;
    for (const auto& r : records) any_failed |= !r->ok();
    if (any_failed) {
      for (const auto& r : records) {
        results.emplace_back(r->ok() ? Status::Cancelled(
                                           "batch aborted by earlier failure")
                                     : r->status());
      }
      return results;
    }
  }
  // Phase 2: publish the successes through the registry's batch path — a
  // contiguous ascending id block mirrors the caller's batch order, and
  // each shard's writer lock is taken once, so queries on other shards are
  // never blocked at all.
  std::vector<RunRecord> to_publish;
  std::vector<size_t> publish_index(count, count);  // count = "failed"
  for (size_t i = 0; i < count; ++i) {
    Result<RunRecord>& r = *records[i];
    if (!r.ok()) continue;
    publish_index[i] = to_publish.size();
    to_publish.push_back(std::move(r).value());
  }
  // Serialize the op-log payloads before PublishBatch consumes the records
  // (same before-the-move discipline as the single-run Publish path).
  struct PendingOp {
    RunStats stats;
    std::vector<uint8_t> blob;
  };
  std::vector<PendingOp> pending;
  if (oplog_ != nullptr) {
    pending.reserve(to_publish.size());
    for (const RunRecord& r : to_publish) {
      pending.push_back({r.stats, r.store.Serialize()});
    }
  }
  const std::vector<uint64_t> ids =
      registry_->PublishBatch(std::move(to_publish));
  counters_->runs_ingested.fetch_add(ids.size(), std::memory_order_relaxed);
  // Append in ascending id order — the block is contiguous, so log order
  // matches id order and a replica replays the batch exactly as published.
  std::vector<Status> append_status(ids.size());
  if (oplog_ != nullptr) {
    for (size_t j = 0; j < ids.size(); ++j) {
      LogOp op;
      op.kind = pending[j].stats.imported ? LogOp::Kind::kImportRun
                                          : LogOp::Kind::kAddRun;
      op.run_id = ids[j];
      op.stats = pending[j].stats;
      op.blob = std::move(pending[j].blob);
      Result<uint64_t> appended = oplog_->Append(std::move(op));
      if (!appended.ok()) {
        append_status[j] = Status::Internal(
            "run " + std::to_string(ids[j]) +
            " was registered but its op-log append failed (" +
            appended.status().message() +
            "); the service is ahead of its replication log");
      }
    }
  }
  for (size_t i = 0; i < count; ++i) {
    if (publish_index[i] == count) {
      results.emplace_back((*records[i]).status());
    } else if (!append_status[publish_index[i]].ok()) {
      results.emplace_back(append_status[publish_index[i]]);
    } else {
      results.emplace_back(RunId(ids[publish_index[i]]));
    }
  }
  return results;
}

std::vector<Result<RunId>> ProvenanceService::AddRunsParallel(
    std::span<const Run> runs, std::span<const DataCatalog* const> catalogs) {
  if (!catalogs.empty() && catalogs.size() != runs.size()) {
    std::vector<Result<RunId>> results;
    results.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      results.emplace_back(
          Status::InvalidArgument("catalogs size does not match runs"));
    }
    return results;
  }
  const SpecEpoch* at = &head_epoch_entry();
  return BulkIngest(runs.size(), [&, at](size_t i) {
    return BuildRecord(runs[i], /*plan=*/nullptr, {},
                       catalogs.empty() ? nullptr : catalogs[i], at);
  });
}

std::vector<Result<RunId>> ProvenanceService::AddRunsWithPlansParallel(
    std::span<const PlannedRun> runs) {
  const SpecEpoch* at = &head_epoch_entry();
  return BulkIngest(runs.size(), [&, at](size_t i) -> Result<RunRecord> {
    const PlannedRun& pr = runs[i];
    if (pr.run == nullptr || pr.plan == nullptr) {
      return Status::InvalidArgument("PlannedRun with null run or plan");
    }
    return BuildRecord(*pr.run, pr.plan,
                       std::vector<VertexId>(pr.origin.begin(),
                                             pr.origin.end()),
                       pr.catalog, at);
  });
}

RunSession ProvenanceService::OpenSession() {
  return RunSession(this, &head_epoch_entry());
}

Status ProvenanceService::RemoveRun(RunId id) {
  if (!registry_->Remove(id.value())) {
    return Status::NotFound("unknown run id");
  }
  counters_->runs_removed.fetch_add(1, std::memory_order_relaxed);
  if (oplog_ != nullptr) {
    LogOp op;
    op.kind = LogOp::Kind::kRemoveRun;
    op.run_id = id.value();
    Result<uint64_t> appended = oplog_->Append(std::move(op));
    if (!appended.ok()) {
      return Status::Internal(
          "run " + std::to_string(id.value()) +
          " was removed but its op-log append failed (" +
          appended.status().message() +
          "); the service is ahead of its replication log");
    }
  }
  return Status::OK();
}

Result<RunId> ProvenanceService::Register(const RunLabeling& labeling,
                                          const DataCatalog* catalog,
                                          bool imported,
                                          const SpecEpoch* at) {
  if (catalog != nullptr) {
    SKL_RETURN_NOT_OK(ValidateCatalog(*catalog, labeling.num_vertices()));
  }
  return Publish(CaptureRecord(labeling, catalog, imported, at));
}

namespace {

/// The cross-epoch query contract (docs/UPDATES.md): `at_epoch` 0 accepts
/// the run's own epoch; any other value must match it exactly.
Status CheckEpochPin(const RunRecord& record, uint64_t at_epoch) {
  if (at_epoch != 0 && at_epoch != record.stats.epoch) {
    return Status::EpochMismatch(
        "run is frozen to spec epoch " +
        std::to_string(record.stats.epoch) +
        " but the query is pinned to epoch " + std::to_string(at_epoch) +
        "; answers are only defined against the run's own epoch");
  }
  return Status::OK();
}

/// The scheme a record's labels answer under: its ingest epoch's scheme.
/// `fallback` (the head scheme) covers records built without a service —
/// registry unit tests; the service always sets the pointer.
const SpecLabelingScheme& SchemeFor(const RunRecord& record,
                                    const SpecLabelingScheme& fallback) {
  return record.scheme != nullptr ? *record.scheme : fallback;
}

}  // namespace

Result<bool> ProvenanceService::Reaches(RunId id, VertexId v, VertexId w,
                                        uint64_t at_epoch) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  const RunRecord& record = handle.record();
  SKL_RETURN_NOT_OK(CheckEpochPin(record, at_epoch));
  if (v >= record.stats.num_vertices || w >= record.stats.num_vertices) {
    return Status::InvalidArgument("vertex out of range for run");
  }
  const SpecLabelingScheme& sch = SchemeFor(record, scheme());
  counters_->reaches_queries.fetch_add(1, std::memory_order_relaxed);
  return Memoized(handle, id.value(), v, w,
                  QueryKind::kReaches, counters_->cache_hits,
                  counters_->cache_misses, [&] {
                    return StoreReaches(record.store, v, w, sch);
                  });
}

Result<std::vector<bool>> ProvenanceService::ReachesBatch(
    RunId id, std::span<const VertexPair> pairs, uint64_t at_epoch) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  SKL_RETURN_NOT_OK(CheckEpochPin(handle.record(), at_epoch));
  const VertexId n = handle.record().stats.num_vertices;
  // Validate the whole span first: a failing batch answers nothing and
  // must touch no counter — including the cache lookup counters, which by
  // contract only tally answered queries.
  for (const auto& [v, w] : pairs) {
    if (v >= n || w >= n) {
      return Status::InvalidArgument("vertex out of range for run");
    }
  }
  const SpecLabelingScheme& sch = SchemeFor(handle.record(), scheme());
  std::vector<bool> answers;
  answers.reserve(pairs.size());
  for (const auto& [v, w] : pairs) {
    answers.push_back(Memoized(
        handle, id.value(), v, w,
        QueryKind::kReaches, counters_->cache_hits, counters_->cache_misses,
        [&] { return StoreReaches(handle.record().store, v, w, sch); }));
  }
  counters_->batch_calls.fetch_add(1, std::memory_order_relaxed);
  counters_->reaches_queries.fetch_add(pairs.size(),
                                       std::memory_order_relaxed);
  return answers;
}

Result<bool> ProvenanceService::DependsOn(RunId id, DataItemId x,
                                          DataItemId x_from,
                                          uint64_t at_epoch) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  SKL_RETURN_NOT_OK(CheckEpochPin(handle.record(), at_epoch));
  const size_t items = handle.record().store.num_items();
  if (x >= items || x_from >= items) {
    return Status::InvalidArgument("unknown data item");
  }
  const SpecLabelingScheme& sch = SchemeFor(handle.record(), scheme());
  counters_->depends_on_queries.fetch_add(1, std::memory_order_relaxed);
  return Memoized(handle, id.value(), x, x_from,
                  QueryKind::kDependsOn, counters_->cache_hits,
                  counters_->cache_misses, [&] {
                    return *StoreDependsOn(handle.record().store, x, x_from,
                                           sch);
                  });
}

Result<std::vector<bool>> ProvenanceService::DependsOnBatch(
    RunId id, std::span<const ItemPair> pairs, uint64_t at_epoch) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  SKL_RETURN_NOT_OK(CheckEpochPin(handle.record(), at_epoch));
  const size_t items = handle.record().store.num_items();
  // Same discipline as ReachesBatch: all-or-nothing validation before any
  // counter or cache traffic.
  for (const auto& [x, x_from] : pairs) {
    if (x >= items || x_from >= items) {
      return Status::InvalidArgument("unknown data item");
    }
  }
  const SpecLabelingScheme& sch = SchemeFor(handle.record(), scheme());
  std::vector<bool> answers;
  answers.reserve(pairs.size());
  for (const auto& [x, x_from] : pairs) {
    answers.push_back(Memoized(
        handle, id.value(), x, x_from,
        QueryKind::kDependsOn, counters_->cache_hits,
        counters_->cache_misses, [&] {
          return *StoreDependsOn(handle.record().store, x, x_from, sch);
        }));
  }
  counters_->batch_calls.fetch_add(1, std::memory_order_relaxed);
  counters_->depends_on_queries.fetch_add(pairs.size(),
                                          std::memory_order_relaxed);
  return answers;
}

Result<bool> ProvenanceService::ModuleDependsOnData(RunId id, VertexId v,
                                                    DataItemId x,
                                                    uint64_t at_epoch) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  const RunRecord& record = handle.record();
  SKL_RETURN_NOT_OK(CheckEpochPin(record, at_epoch));
  if (x >= record.store.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  if (v >= record.store.num_vertices()) {
    return Status::InvalidArgument("unknown vertex");
  }
  const SpecLabelingScheme& sch = SchemeFor(record, scheme());
  counters_->module_data_queries.fetch_add(1, std::memory_order_relaxed);
  return Memoized(handle, id.value(), v, x,
                  QueryKind::kModuleData, counters_->cache_hits,
                  counters_->cache_misses, [&] {
                    return *StoreModuleDependsOnData(record.store, v, x, sch);
                  });
}

Result<bool> ProvenanceService::DataDependsOnModule(RunId id, DataItemId x,
                                                    VertexId v,
                                                    uint64_t at_epoch) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  const RunRecord& record = handle.record();
  SKL_RETURN_NOT_OK(CheckEpochPin(record, at_epoch));
  if (x >= record.store.num_items()) {
    return Status::InvalidArgument("unknown data item");
  }
  if (v >= record.store.num_vertices()) {
    return Status::InvalidArgument("unknown vertex");
  }
  const SpecLabelingScheme& sch = SchemeFor(record, scheme());
  counters_->data_module_queries.fetch_add(1, std::memory_order_relaxed);
  return Memoized(handle, id.value(), x, v,
                  QueryKind::kDataModule, counters_->cache_hits,
                  counters_->cache_misses, [&] {
                    return *StoreDataDependsOnModule(record.store, x, v, sch);
                  });
}

Result<std::vector<uint8_t>> ProvenanceService::ExportRun(RunId id) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  return handle.record().store.Serialize();
}

Result<RunId> ProvenanceService::ImportRun(
    const std::vector<uint8_t>& blob) {
  SKL_ASSIGN_OR_RETURN(ProvenanceStore store,
                       ProvenanceStore::Deserialize(blob));
  // Imports land in the head epoch: the blob's labels must be valid
  // against the spec/scheme that is current right now.
  const SpecEpoch& at = head_epoch_entry();
  // Tagged blobs must name this service's scheme — labels only answer
  // correctly under the scheme that produced them. Untagged (v1) blobs
  // predate the tag and are accepted as before.
  if (!store.scheme_tag().empty() &&
      store.scheme_tag() != at.scheme->name()) {
    return Status::InvalidArgument(
        "blob was labeled under scheme '" + store.scheme_tag() +
        "', but this service answers under scheme '" +
        std::string(at.scheme->name()) + "'");
  }
  // The blob must stem from a run of this service's specification: every
  // origin must name a spec vertex, or queries would index the scheme out
  // of range.
  const VertexId n_g = at.spec->graph().num_vertices();
  for (VertexId v = 0; v < store.num_vertices(); ++v) {
    if (store.label(v).origin >= n_g) {
      return Status::InvalidArgument(
          "blob references spec vertex " +
          std::to_string(store.label(v).origin) +
          " unknown to this service's specification");
    }
  }
  RunRecord record;
  record.stats.num_vertices = store.num_vertices();
  record.stats.num_items = store.num_items();
  record.stats.imported = true;
  record.stats.epoch = at.number;
  record.spec = at.spec.get();
  record.scheme = at.scheme.get();
  record.store = std::move(store);
  counters_->runs_imported.fetch_add(1, std::memory_order_relaxed);
  // Invalidate the target shard's cache: an import changes what the shard
  // can answer, and generation-stamping makes that O(1).
  return Publish(std::move(record), /*invalidate=*/true);
}

bool ProvenanceService::Contains(RunId id) const {
  return registry_->Contains(id.value());
}

size_t ProvenanceService::num_runs() const { return registry_->size(); }

Result<RunStats> ProvenanceService::Stats(RunId id) const {
  RunRegistry::ReadHandle handle = registry_->AcquireRead(id.value());
  if (!handle) return Status::NotFound("unknown run id");
  return handle.record().stats;
}

ServiceStats ProvenanceService::service_stats() const {
  ServiceStats stats;
  stats.num_runs = registry_->size();
  const auto get = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  stats.reaches_queries = get(counters_->reaches_queries);
  stats.depends_on_queries = get(counters_->depends_on_queries);
  stats.module_data_queries = get(counters_->module_data_queries);
  stats.data_module_queries = get(counters_->data_module_queries);
  stats.batch_calls = get(counters_->batch_calls);
  stats.runs_ingested = get(counters_->runs_ingested);
  stats.runs_imported = get(counters_->runs_imported);
  stats.runs_removed = get(counters_->runs_removed);
  stats.bulk_batches = get(counters_->bulk_batches);
  stats.snapshot_saves = get(counters_->snapshot_saves);
  stats.cache_hits = get(counters_->cache_hits);
  stats.cache_misses = get(counters_->cache_misses);
  // Locally both fields report the attached log's head; the net server
  // substitutes a replica's applied/target pair before encoding.
  stats.replication_lsn = replication_lsn();
  stats.replication_target_lsn = stats.replication_lsn;
  stats.spec_epoch = spec_epoch();
  return stats;
}

void ProvenanceService::AttachOpLog(OpLog* oplog) { oplog_ = oplog; }

uint64_t ProvenanceService::replication_lsn() const {
  return oplog_ != nullptr ? oplog_->last_lsn() : 0;
}

Status ProvenanceService::RestoreRun(uint64_t id, const RunStats& stats,
                                     std::span<const uint8_t> blob) {
  if (id == 0) {
    return Status::InvalidArgument("run id 0 is not a valid id");
  }
  if (registry_->Contains(id)) {
    // Already applied — the snapshot/stream overlap of a replica bootstrap,
    // or a retried batch. Idempotence makes both safe.
    return Status::OK();
  }
  SKL_ASSIGN_OR_RETURN(ProvenanceStore store,
                       ProvenanceStore::Deserialize(blob));
  // Resolve the run's epoch: replicated/restored stats carry the epoch the
  // run was ingested under on the source service. Epoch 0 is the pre-epoch
  // wire/snapshot encoding and normalizes to 1 (the creation spec).
  RunStats normalized = stats;
  if (normalized.epoch == 0) normalized.epoch = 1;
  const SpecEpoch* at = FindEpoch(normalized.epoch);
  if (at == nullptr) {
    return Status::InvalidArgument(
        "replicated run " + std::to_string(id) + " was ingested under spec "
        "epoch " + std::to_string(normalized.epoch) +
        ", but this service's epoch chain only reaches epoch " +
        std::to_string(spec_epoch()) +
        " — apply the missing spec deltas first");
  }
  if (!store.scheme_tag().empty() &&
      store.scheme_tag() != at->scheme->name()) {
    return Status::InvalidArgument(
        "replicated run " + std::to_string(id) +
        " was labeled under scheme '" + store.scheme_tag() +
        "', but this service answers under scheme '" +
        std::string(at->scheme->name()) + "'");
  }
  if (store.num_vertices() != stats.num_vertices ||
      store.num_items() != stats.num_items) {
    return Status::InvalidArgument(
        "replicated run " + std::to_string(id) +
        ": stats disagree with the stored labels/catalog");
  }
  // Same guard as ImportRun: every origin must name a spec vertex of the
  // run's epoch, or queries would index the scheme out of range.
  const VertexId n_g = at->spec->graph().num_vertices();
  for (VertexId v = 0; v < store.num_vertices(); ++v) {
    if (store.label(v).origin >= n_g) {
      return Status::InvalidArgument(
          "replicated run " + std::to_string(id) +
          " references spec vertex " + std::to_string(store.label(v).origin) +
          " unknown to this service's specification");
    }
  }
  RunRecord record;
  record.stats = normalized;
  record.spec = at->spec.get();
  record.scheme = at->scheme.get();
  record.store = std::move(store);
  // A false return means another apply raced this id in; idempotence again.
  (void)registry_->Restore(id, std::move(record));
  registry_->EnsureNextIdAtLeast(id + 1);
  return Status::OK();
}

std::vector<RunId> ProvenanceService::ListRuns() const {
  const std::vector<uint64_t> raw = registry_->ListIds();
  std::vector<RunId> ids;
  ids.reserve(raw.size());
  for (uint64_t id : raw) ids.push_back(RunId(id));
  return ids;
}

Result<RunId> RunSession::Seal(const DataCatalog* catalog) && {
  SKL_ASSIGN_OR_RETURN(RunLabeling labeling, std::move(labeler_).Finish());
  return service_->Register(labeling, catalog, /*imported=*/false, epoch_);
}

const ProvenanceService::SpecEpoch* ProvenanceService::FindEpoch(
    uint64_t number) const {
  std::lock_guard<std::mutex> lock(*epoch_mu_);
  if (number == 0 || number > epochs_->size()) return nullptr;
  return &(*epochs_)[number - 1];
}

Result<uint64_t> ProvenanceService::ApplySpecDelta(const SpecDelta& delta) {
  std::lock_guard<std::mutex> lock(*epoch_mu_);
  return ApplyDeltaLocked(delta, /*check_dependents=*/true,
                          /*append_log=*/true);
}

Status ProvenanceService::ApplySpecDeltaReplicated(const SpecDelta& delta,
                                                   uint64_t target_epoch) {
  std::lock_guard<std::mutex> lock(*epoch_mu_);
  const uint64_t head = epochs_->back().number;
  if (target_epoch != 0 && target_epoch <= head) {
    // Already applied — the snapshot/stream overlap of a replica
    // bootstrap, or a retried batch. Idempotence makes both safe.
    return Status::OK();
  }
  if (target_epoch != 0 && target_epoch != head + 1) {
    return Status::InvalidArgument(
        "gap in the delta chain: replica is at spec epoch " +
        std::to_string(head) + " but the op targets epoch " +
        std::to_string(target_epoch));
  }
  // No dependent check and no op-log append: the primary already ran the
  // check, and a replica never writes its own log from applied ops.
  Result<uint64_t> applied = ApplyDeltaLocked(delta, /*check_dependents=*/false,
                                              /*append_log=*/false);
  if (!applied.ok()) return applied.status();
  return Status::OK();
}

Result<uint64_t> ProvenanceService::ApplyDeltaLocked(const SpecDelta& delta,
                                                     bool check_dependents,
                                                     bool append_log) {
  const SpecEpoch& head = epochs_->back();
  if (!bundled_scheme_) {
    return Status::InvalidArgument(
        "spec deltas require a bundled labeling scheme (the service was "
        "created with a custom SpecLabelingScheme it cannot re-instantiate "
        "for the new epoch)");
  }
  if (check_dependents && delta.kind == SpecDelta::Kind::kRemoveModule) {
    // RemoveModule must not orphan live runs: a head-epoch run whose
    // labels reference the victim vertex would keep answering (it is
    // frozen to its epoch), but the operator almost certainly meant to
    // retire those runs first. The scan is best-effort under concurrent
    // ingestion — a run ingested after the scan freezes to the *old*
    // epoch and stays correct, so correctness never depends on the check.
    const VertexId victim = head.spec->VertexOf(delta.module);
    if (victim != kInvalidVertex) {
      size_t dependents = 0;
      registry_->ForEach([&](uint64_t, const RunRecord& record) {
        if (record.stats.epoch != head.number) return;
        const ProvenanceStore& store = record.store;
        for (VertexId v = 0; v < store.num_vertices(); ++v) {
          if (store.label(v).origin == victim) {
            ++dependents;
            return;
          }
        }
      });
      if (dependents > 0) {
        return Status::InvalidArgument(
            "RemoveModule '" + delta.module + "' rejected: " +
            std::to_string(dependents) + " live run(s) of the current "
            "epoch execute that module; remove those runs first");
      }
    }
  }
  SKL_ASSIGN_OR_RETURN(SpecDeltaApplication applied,
                       ApplySpecDeltaToSpec(*head.spec, delta));
  std::unique_ptr<SpecLabelingScheme> scheme =
      CreateSpecScheme(scheme_kind_);
  {
    Stopwatch relabel_timer;
    Status built =
        options_.full_rebuild_on_delta
            ? scheme->Build(applied.spec.graph())
            : scheme->BuildIncremental(applied.spec.graph(), *head.scheme,
                                       applied.vertex_remap, applied.dirty);
    if (relabel_hist_ != nullptr) {
      relabel_hist_->Record(
          static_cast<uint64_t>(relabel_timer.ElapsedMicros()));
    }
    SKL_RETURN_NOT_OK(built);
  }
  SpecEpoch next;
  next.number = head.number + 1;
  next.spec = std::make_unique<Specification>(std::move(applied.spec));
  next.scheme = std::move(scheme);
  next.delta = delta;
  // Log-before-install: a delta needs no allocated id, so an append
  // failure simply rejects the delta with the service unchanged — the
  // opposite order would let a replica miss an epoch the primary serves.
  if (append_log && oplog_ != nullptr) {
    LogOp op;
    op.kind = LogOp::Kind::kSpecDelta;
    op.run_id = 0;
    op.stats.epoch = next.number;
    op.blob = SerializeSpecDelta(delta);
    Result<uint64_t> appended = oplog_->Append(std::move(op));
    if (!appended.ok()) return appended.status();
  }
  epochs_->push_back(std::move(next));
  head_->store(&epochs_->back(), std::memory_order_release);
  return epochs_->back().number;
}

}  // namespace skl
