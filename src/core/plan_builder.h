// Linear-time recovery of the execution plan T_R and context function from a
// raw run graph (paper Section 5, algorithms ComputeContext/SearchNodes).
//
// The run is processed bottom-up along the fork/loop hierarchy T_G. At each
// level, copies of each subgraph H are discovered from "leader" seed edges
// (a member edge of E(H) for leaves; the collapsed execution edge of a
// designated child for inner nodes), explored by a pruned undirected DFS that
// never leaves the copy, and then collapsed to a single special edge.
// Parallel fork copies sharing a source/sink pair are grouped under one F-
// node; serial loop copies are chained along the loop's serial edges under an
// ordered L- node. Special edges are tagged with the plan node they stand
// for, which removes the leader-bookkeeping ambiguity of the paper while
// keeping the same asymptotics: every run edge is traversed O(1) times and at
// most |V(T_R)| <= 4 m_R special edges are ever created (Lemma 4.2).
//
// ConstructPlan doubles as a conformance checker: a run that was not derived
// from the specification fails with InvalidRun.
#ifndef SKL_CORE_PLAN_BUILDER_H_
#define SKL_CORE_PLAN_BUILDER_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/execution_plan.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"

namespace skl {

struct RecoveredPlan {
  ExecutionPlan plan;
  std::vector<VertexId> origin;  ///< run vertex -> spec vertex
};

/// Recovers plan + context + origin from a raw run graph.
Result<RecoveredPlan> ConstructPlan(const Specification& spec, const Run& run);

/// Variant with a precomputed origin function (spares the name matching).
Result<RecoveredPlan> ConstructPlanWithOrigin(const Specification& spec,
                                              const Run& run,
                                              std::vector<VertexId> origin);

}  // namespace skl

#endif  // SKL_CORE_PLAN_BUILDER_H_
