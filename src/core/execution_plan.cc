#include "src/core/execution_plan.h"

#include <functional>

#include "src/common/check.h"

namespace skl {

bool IsPlusNode(PlanNodeType t) {
  return t == PlanNodeType::kGPlus || t == PlanNodeType::kFPlus ||
         t == PlanNodeType::kLPlus;
}

const char* PlanNodeTypeName(PlanNodeType t) {
  switch (t) {
    case PlanNodeType::kGPlus:
      return "G+";
    case PlanNodeType::kFMinus:
      return "F-";
    case PlanNodeType::kFPlus:
      return "F+";
    case PlanNodeType::kLMinus:
      return "L-";
    case PlanNodeType::kLPlus:
      return "L+";
  }
  return "?";
}

ExecutionPlan::ExecutionPlan(VertexId num_run_vertices)
    : context_(num_run_vertices, kInvalidPlanNode) {
  nodes_.push_back(PlanNode{PlanNodeType::kGPlus, kHierRoot,
                            kInvalidPlanNode, {}, 0});
  num_plus_nodes_ = 1;
}

PlanNodeId ExecutionPlan::AddNode(PlanNodeType type, HierNodeId hier,
                                  PlanNodeId parent) {
  PlanNodeId id = static_cast<PlanNodeId>(nodes_.size());
  nodes_.push_back(PlanNode{type, hier, parent, {}, 0});
  if (IsPlusNode(type)) ++num_plus_nodes_;
  if (parent != kInvalidPlanNode) nodes_[parent].children.push_back(id);
  return id;
}

void ExecutionPlan::SetParent(PlanNodeId child, PlanNodeId parent) {
  SKL_DCHECK(nodes_[child].parent == kInvalidPlanNode);
  nodes_[child].parent = parent;
  nodes_[parent].children.push_back(child);
}

void ExecutionPlan::AssignContext(VertexId v, PlanNodeId x) {
  SKL_DCHECK(v < context_.size());
  SKL_DCHECK(context_[v] == kInvalidPlanNode);
  SKL_DCHECK(IsPlusNode(nodes_[x].type));
  context_[v] = x;
  if (nodes_[x].num_context_vertices++ == 0) ++num_nonempty_plus_;
}

VertexId ExecutionPlan::AppendVertex(PlanNodeId x) {
  VertexId v = static_cast<VertexId>(context_.size());
  context_.push_back(kInvalidPlanNode);
  AssignContext(v, x);
  return v;
}

Status ExecutionPlan::Validate(size_t num_run_edges) const {
  if (nodes_.empty() || nodes_[kPlanRoot].type != PlanNodeType::kGPlus) {
    return Status::Internal("plan has no G+ root");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const PlanNode& n = nodes_[i];
    if (i == kPlanRoot) {
      if (n.parent != kInvalidPlanNode) {
        return Status::Internal("root has a parent");
      }
    } else if (n.parent == kInvalidPlanNode) {
      return Status::Internal("non-root plan node has no parent");
    }
    for (PlanNodeId c : n.children) {
      if (nodes_[c].parent != static_cast<PlanNodeId>(i)) {
        return Status::Internal("child/parent mismatch in plan");
      }
      // + nodes alternate with - nodes by construction.
      if (IsPlusNode(n.type) == IsPlusNode(nodes_[c].type)) {
        return Status::Internal("plan does not alternate +/- levels");
      }
      if (!IsPlusNode(n.type) && nodes_[c].hier != n.hier) {
        return Status::Internal("copy under execution node of another "
                                "subgraph");
      }
    }
    if (!IsPlusNode(n.type)) {
      if (n.children.empty()) {
        return Status::Internal("execution (-) node with no copies");
      }
      if (n.num_context_vertices != 0) {
        return Status::Internal("- node has context vertices");
      }
    }
  }
  for (size_t v = 0; v < context_.size(); ++v) {
    if (context_[v] == kInvalidPlanNode) {
      return Status::Internal("vertex without context");
    }
    if (!IsPlusNode(nodes_[context_[v]].type)) {
      return Status::Internal("context of a vertex is not a + node");
    }
  }
  // Lemma 4.2: |V(T_R)| <= 4 m_R (trivially true for runs with no edges).
  if (num_run_edges > 0 && nodes_.size() > 4 * num_run_edges) {
    return Status::Internal("plan exceeds the Lemma 4.2 size bound");
  }
  return Status::OK();
}

std::string ExecutionPlan::ToString(const Hierarchy* hierarchy) const {
  std::string out;
  std::function<void(PlanNodeId, int)> rec = [&](PlanNodeId id, int indent) {
    const PlanNode& n = nodes_[id];
    out.append(static_cast<size_t>(indent) * 2, ' ');
    out += PlanNodeTypeName(n.type);
    if (hierarchy != nullptr && n.hier != kHierRoot) {
      out += "(subgraph ";
      out += std::to_string(hierarchy->node(n.hier).subgraph_index);
      out += ")";
    }
    out += " [node ";
    out += std::to_string(id);
    if (IsPlusNode(n.type)) {
      out += ", ";
      out += std::to_string(n.num_context_vertices);
      out += " ctx vertices";
    }
    out += "]\n";
    for (PlanNodeId c : n.children) rec(c, indent + 1);
  };
  rec(kPlanRoot, 0);
  return out;
}

}  // namespace skl
