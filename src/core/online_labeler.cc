#include "src/core/online_labeler.h"

#include <algorithm>

#include "src/common/check.h"

namespace skl {

OnlineLabeler::OnlineLabeler(const Specification* spec,
                             const SpecLabelingScheme* scheme)
    : spec_(spec), scheme_(scheme), plan_(0) {
  depth_of_node_.push_back(0);
  serial_index_.push_back(0);
  stack_.push_back(Frame{
      kPlanRoot, /*is_copy=*/true,
      std::vector<uint32_t>(
          spec_->hierarchy().node(kHierRoot).children.size(), 0)});
}

Status OnlineLabeler::BeginExecution(HierNodeId subgraph) {
  if (finished_) return Status::InvalidArgument("labeler already finished");
  if (!stack_.back().is_copy) {
    return Status::InvalidRun(
        "BeginExecution while another execution is awaiting copies");
  }
  const Hierarchy& hg = spec_->hierarchy();
  if (subgraph <= 0 || static_cast<size_t>(subgraph) >= hg.size()) {
    return Status::InvalidArgument("unknown subgraph");
  }
  const PlanNode& open_copy = plan_.node(stack_.back().node);
  const HierNode& parent_hier = hg.node(open_copy.hier);
  auto it = std::find(parent_hier.children.begin(),
                      parent_hier.children.end(), subgraph);
  if (it == parent_hier.children.end()) {
    return Status::InvalidRun(
        "subgraph is not nested directly inside the open copy's subgraph");
  }
  size_t child_index =
      static_cast<size_t>(it - parent_hier.children.begin());
  if (stack_.back().child_tally[child_index]++ != 0) {
    return Status::InvalidRun(
        "subgraph already executed inside this copy");
  }
  bool is_fork = hg.node(subgraph).kind == HierKind::kFork;
  PlanNodeId g = plan_.AddNode(
      is_fork ? PlanNodeType::kFMinus : PlanNodeType::kLMinus, subgraph,
      stack_.back().node);
  depth_of_node_.push_back(depth_of_node_[stack_.back().node] + 1);
  serial_index_.push_back(
      static_cast<uint32_t>(plan_.node(stack_.back().node).children.size() -
                            1));
  stack_.push_back(Frame{g, /*is_copy=*/false, {}});
  return Status::OK();
}

Status OnlineLabeler::BeginCopy() {
  if (finished_) return Status::InvalidArgument("labeler already finished");
  if (stack_.back().is_copy) {
    return Status::InvalidRun("BeginCopy outside an execution");
  }
  const Hierarchy& hg = spec_->hierarchy();
  PlanNodeId g = stack_.back().node;
  HierNodeId hier = plan_.node(g).hier;
  bool is_fork = plan_.node(g).type == PlanNodeType::kFMinus;
  PlanNodeId x = plan_.AddNode(
      is_fork ? PlanNodeType::kFPlus : PlanNodeType::kLPlus, hier, g);
  depth_of_node_.push_back(depth_of_node_[g] + 1);
  serial_index_.push_back(
      static_cast<uint32_t>(plan_.node(g).children.size() - 1));
  stack_.push_back(Frame{
      x, /*is_copy=*/true,
      std::vector<uint32_t>(hg.node(hier).children.size(), 0)});
  return Status::OK();
}

Status OnlineLabeler::EndCopy() {
  if (finished_) return Status::InvalidArgument("labeler already finished");
  if (stack_.size() <= 1 || !stack_.back().is_copy) {
    return Status::InvalidRun("EndCopy without an open copy");
  }
  // Every nested fork/loop must have executed exactly once (Definition 6
  // derives runs by replacing subgraphs, and a copy always instantiates
  // each nested subgraph at least once).
  for (uint32_t t : stack_.back().child_tally) {
    if (t != 1) {
      return Status::InvalidRun(
          "copy closed without executing each nested fork/loop exactly "
          "once");
    }
  }
  stack_.pop_back();
  return Status::OK();
}

Status OnlineLabeler::EndExecution() {
  if (finished_) return Status::InvalidArgument("labeler already finished");
  if (stack_.back().is_copy) {
    return Status::InvalidRun("EndExecution without an open execution");
  }
  if (plan_.node(stack_.back().node).children.empty()) {
    return Status::InvalidRun("execution closed without any copy");
  }
  stack_.pop_back();
  return Status::OK();
}

Result<VertexId> OnlineLabeler::ExecuteModule(std::string_view module_name) {
  if (finished_) return Status::InvalidArgument("labeler already finished");
  if (!stack_.back().is_copy) {
    return Status::InvalidRun(
        "module executed between BeginExecution and BeginCopy");
  }
  VertexId origin = spec_->VertexOf(module_name);
  if (origin == kInvalidVertex) {
    return Status::InvalidRun("unknown module: " + std::string(module_name));
  }
  PlanNodeId copy = stack_.back().node;
  if (spec_->hierarchy().OwnerOf(origin) != plan_.node(copy).hier) {
    return Status::InvalidRun(
        "module '" + std::string(module_name) +
        "' is not owned by the currently open fork/loop copy");
  }
  VertexId v = plan_.AppendVertex(copy);
  context_of_.push_back(copy);
  origin_of_.push_back(origin);
  return v;
}

bool OnlineLabeler::Reaches(VertexId v, VertexId w) const {
  SKL_CHECK(v < context_of_.size() && w < context_of_.size());
  PlanNodeId a = context_of_[v];
  PlanNodeId b = context_of_[w];
  // Lift the deeper context until both sit at the same depth, then walk up
  // in lockstep; remember the child entered from each side.
  PlanNodeId a_child = kInvalidPlanNode;
  PlanNodeId b_child = kInvalidPlanNode;
  while (depth_of_node_[a] > depth_of_node_[b]) {
    a_child = a;
    a = plan_.node(a).parent;
  }
  while (depth_of_node_[b] > depth_of_node_[a]) {
    b_child = b;
    b = plan_.node(b).parent;
  }
  while (a != b) {
    a_child = a;
    b_child = b;
    a = plan_.node(a).parent;
    b = plan_.node(b).parent;
  }
  switch (plan_.node(a).type) {
    case PlanNodeType::kFMinus:
      // Parallel copies (Lemma 4.3): unreachable either way.
      return false;
    case PlanNodeType::kLMinus:
      // Serial copies: earlier reaches later (Lemma 4.3). Children of an
      // L- node are appended in execution order.
      return serial_index_[a_child] < serial_index_[b_child];
    default:
      // Same copy or nested + ancestor (Lemma 4.4): spec reachability of
      // the origins.
      return scheme_->Reaches(origin_of_[v], origin_of_[w]);
  }
}

Result<RunLabeling> OnlineLabeler::Finish() && {
  if (finished_) return Status::InvalidArgument("labeler already finished");
  if (stack_.size() != 1) {
    return Status::InvalidRun("executions or copies still open");
  }
  for (uint32_t t : stack_.back().child_tally) {
    if (t != 1) {
      return Status::InvalidRun(
          "run finished without executing each top-level fork/loop exactly "
          "once");
    }
  }
  finished_ = true;
  return RunLabeling::FromPlan(*spec_, scheme_, plan_,
                               std::move(origin_of_));
}

}  // namespace skl
