// Sharded, lock-striped run registry: the storage layer under
// ProvenanceService. Runs are partitioned over N shards by a mixed hash of
// their RunId; each shard owns its runs' ProvenanceStores and stats behind
// its own std::shared_mutex, plus a bounded QueryCache of memoized answers.
// A query therefore takes only its shard's *read* lock — two queries on
// runs in different shards never touch the same mutex, which is what lets
// multi-reader throughput scale past the single global lock the service
// used to funnel everything through (bench/bench_query_cache.cc measures
// the difference).
//
//   shard = shards_[mix(id) & mask]          (mask = num_shards - 1)
//
//   ┌ Shard ──────────────────────────────────────────────┐
//   │ shared_mutex mu                                     │
//   │   runs:       id -> RunRecord        (guarded by mu)│
//   │   generation: uint64                 (guarded by mu)│
//   │   cache:      QueryCache             (lock-free)    │
//   └─────────────────────────────────────────────────────┘
//
// Generations make invalidation O(1): every cached answer is stamped with
// its shard's generation, and Remove / an invalidating Publish (ImportRun)
// bump the generation under the shard's writer lock instead of scanning
// the cache. A whole-service swap (LoadSnapshot) simply builds a fresh
// registry, whose shards start at a fresh generation. (Strictly, exact-key
// matching plus never-reused ids and immutable records already prevent a
// removed run's entries from ever being served; the stamp is the layer
// that keeps the cache sound under any future mutation shape, priced at
// shard-wide eviction on remove/import — a deliberate trade of hit rate
// under churn for an invalidation argument that needs no per-mutation
// reasoning.)
//
// Cross-registry operations (ListIds, size, ForEach — the substrate of
// ListRuns / ServiceStats / SaveSnapshot) compose per-shard snapshots by
// visiting one shard lock at a time; there is no stop-the-world lock over
// all shards, so they never stall queries on other shards. The composed
// view is per-shard consistent, not a single global instant — the id
// allocator below is what keeps such views sound (every visible id is
// below the allocator value read *after* the sweep).
//
// Ids are allocated from one atomic counter, monotonic and never reused:
// ascending id order doubles as registration order across all shards, and
// a stale id fails lookups with "not found" forever.
#ifndef SKL_CORE_RUN_REGISTRY_H_
#define SKL_CORE_RUN_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/core/provenance_store.h"
#include "src/core/query_cache.h"

namespace skl {

class Specification;
class SpecLabelingScheme;

/// Per-run bookkeeping returned by ProvenanceService::Stats.
struct RunStats {
  VertexId num_vertices = 0;
  size_t num_items = 0;        ///< data items in the catalog (0 if none)
  uint32_t label_bits = 0;     ///< per-label bits; 0 for imported runs
  uint32_t context_bits = 0;   ///< 3 * ceil(log2 n_T^+); 0 for imported runs
  uint32_t origin_bits = 0;    ///< ceil(log2 n_G); 0 for imported runs
  uint32_t num_nonempty_plus = 0;  ///< nonempty + nodes; 0 for imported runs
  bool imported = false;       ///< true when ingested via ImportRun
  /// Spec epoch the run was ingested under (docs/UPDATES.md). Runs are
  /// frozen to their epoch: queries answer against that epoch's scheme
  /// forever, so later spec deltas never change an existing answer.
  uint64_t epoch = 1;
};

/// What a shard stores per run: the immutable bit-packed labels (+ catalog)
/// and the stats snapshot taken at ingestion.
struct RunRecord {
  ProvenanceStore store;
  RunStats stats;
  /// The ingest epoch's specification and labeling scheme, borrowed from
  /// the service's epoch chain (epoch entries are never destroyed, so the
  /// pointers stay valid for the service's lifetime). Null in contexts
  /// without a service (registry unit tests); the service always sets them.
  const Specification* spec = nullptr;
  const SpecLabelingScheme* scheme = nullptr;
};

class RunRegistry {
 public:
  /// Upper clamp on Options::num_shards (also the CLI's --shards bound).
  static constexpr size_t kMaxShards = 1024;

  struct Options {
    /// Shard count; rounded up to a power of two, clamped to
    /// [1, kMaxShards].
    size_t num_shards = 8;
    /// QueryCache slots per shard (rounded up to a power of two);
    /// 0 disables result caching entirely.
    size_t cache_slots = 4096;
  };

  explicit RunRegistry(const Options& options);

  // Shards hold mutexes and atomics: the registry lives behind a
  // unique_ptr in the (movable) service and never moves itself.
  RunRegistry(const RunRegistry&) = delete;
  RunRegistry& operator=(const RunRegistry&) = delete;

  /// A shard read lock + everything a query needs: the record, the shard's
  /// cache (null when caching is disabled) and the generation to stamp /
  /// match cache entries with. Falsy when the id is unknown (the lock is
  /// released immediately in that case).
  class ReadHandle {
   public:
    explicit operator bool() const { return record_ != nullptr; }
    const RunRecord& record() const { return *record_; }
    QueryCache* cache() const { return cache_; }
    uint64_t generation() const { return generation_; }
    /// The owning shard's cache hit/miss tallies (docs/OBSERVABILITY.md);
    /// the query path bumps them relaxed alongside the service-wide
    /// counters. Null iff the handle is falsy.
    std::atomic<uint64_t>* shard_cache_hits() const { return shard_hits_; }
    std::atomic<uint64_t>* shard_cache_misses() const {
      return shard_misses_;
    }

   private:
    friend class RunRegistry;
    ReadHandle() = default;
    std::shared_lock<std::shared_mutex> lock_;
    const RunRecord* record_ = nullptr;
    QueryCache* cache_ = nullptr;
    uint64_t generation_ = 0;
    std::atomic<uint64_t>* shard_hits_ = nullptr;
    std::atomic<uint64_t>* shard_misses_ = nullptr;
  };

  /// Locks the owning shard shared and resolves the id. The handle keeps
  /// the shard readable (other readers proceed; writers wait) until it is
  /// destroyed — keep its scope as tight as the query it serves.
  ReadHandle AcquireRead(uint64_t id) const;

  /// Allocates the next id and inserts the record under its shard's writer
  /// lock. `invalidate` additionally bumps the shard's generation (the
  /// ImportRun contract: an imported blob's answers must never be
  /// satisfied by entries cached before it existed).
  uint64_t Publish(RunRecord record, bool invalidate = false);

  /// Bulk publish: allocates a contiguous ascending id block (so ids
  /// mirror batch order), then inserts grouped by shard — each shard's
  /// writer lock is taken exactly once per batch.
  std::vector<uint64_t> PublishBatch(std::vector<RunRecord> records);

  /// Removes a run and bumps its shard's generation (O(1) invalidation of
  /// every cached answer that could mention it). False if unknown.
  bool Remove(uint64_t id);

  bool Contains(uint64_t id) const;

  /// Total runs, composed shard by shard (per-shard consistent).
  size_t size() const;

  /// All registered ids in ascending (= registration) order, composed
  /// shard by shard and merged.
  std::vector<uint64_t> ListIds() const;

  /// Visits every run under its owning shard's read lock, one shard at a
  /// time; cross-shard visit order is by shard, not by id. The substrate
  /// of SaveSnapshot: callers collect and sort by id afterwards.
  void ForEach(
      const std::function<void(uint64_t, const RunRecord&)>& fn) const;

  /// The id the next Publish would hand out. For snapshot composition,
  /// read it *after* a ForEach sweep: ids are allocated before records
  /// become visible, so every id the sweep saw is strictly below it.
  uint64_t next_id() const {
    return next_id_.load(std::memory_order_acquire);
  }

  /// Snapshot restore: inserts a record under a caller-chosen id without
  /// touching the allocator. False if the id is already present. Pair with
  /// SetNextId once all records are in.
  bool Restore(uint64_t id, RunRecord record);

  /// Snapshot restore: seeds the allocator so the next Publish hands out
  /// the same id it would have on the saving service.
  void SetNextId(uint64_t next_id) {
    next_id_.store(next_id, std::memory_order_release);
  }

  /// Monotonic SetNextId (CAS-max) for replica apply, where Restore()d ids
  /// arrive one op at a time: after applying an op for id X the allocator
  /// must be at least X+1, but must never move backwards.
  void EnsureNextIdAtLeast(uint64_t next_id) {
    uint64_t current = next_id_.load(std::memory_order_acquire);
    while (current < next_id &&
           !next_id_.compare_exchange_weak(current, next_id,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    }
  }

  size_t num_shards() const { return shard_mask_ + 1; }
  size_t cache_slots_per_shard() const { return cache_slots_; }

  /// Which shard owns `id` — the label the observability layer stamps on
  /// per-shard series and slow-query entries.
  size_t ShardIndexFor(uint64_t id) const { return ShardIndexOf(id); }

  /// Point-in-time per-shard cache tallies (shard < num_shards()); the
  /// metrics exposition reads these at scrape time.
  uint64_t shard_cache_hits(size_t shard) const {
    return shards_[shard].cache_hits.load(std::memory_order_relaxed);
  }
  uint64_t shard_cache_misses(size_t shard) const {
    return shards_[shard].cache_misses.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<uint64_t, RunRecord> runs;  // guarded by mu
    // Guarded by mu (bumped under unique, read under shared): the stamp
    // cached answers must match. Starts at 1 so the zero-initialized
    // cache slots can never satisfy a lookup.
    uint64_t generation = 1;
    std::unique_ptr<QueryCache> cache;  // null when caching is disabled
    // Per-shard result-cache tallies, bumped relaxed by read-lock holders
    // (not guarded by mu; the sum over shards tracks the service-wide
    // cache_hits/cache_misses counters).
    mutable std::atomic<uint64_t> cache_hits{0};
    mutable std::atomic<uint64_t> cache_misses{0};
  };

  size_t ShardIndexOf(uint64_t id) const;
  Shard& ShardOf(uint64_t id) { return shards_[ShardIndexOf(id)]; }
  const Shard& ShardOf(uint64_t id) const {
    return shards_[ShardIndexOf(id)];
  }

  size_t shard_mask_;
  size_t cache_slots_;
  std::atomic<uint64_t> next_id_{1};
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace skl

#endif  // SKL_CORE_RUN_REGISTRY_H_
