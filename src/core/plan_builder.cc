#include "src/core/plan_builder.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/graph/multigraph.h"

namespace skl {

namespace {

uint64_t PairKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Working state of the recovery algorithm.
class PlanRecovery {
 public:
  PlanRecovery(const Specification& spec, const Run& run,
               std::vector<VertexId> origin)
      : spec_(spec),
        hg_(spec.hierarchy()),
        origin_(std::move(origin)),
        mg_(run.graph()),
        plan_(run.num_vertices()),
        num_run_edges_(run.num_edges()) {}

  Result<RecoveredPlan> Build() {
    SKL_RETURN_NOT_OK(SeedLeaves());
    vert_stamp_.assign(origin_.size(), 0);
    for (int32_t depth = hg_.depth(); depth >= 2; --depth) {
      SKL_RETURN_NOT_OK(ProcessLevel(depth));
    }
    SKL_RETURN_NOT_OK(FinishRoot());
    SKL_RETURN_NOT_OK(ValidateRootLevel());
    return RecoveredPlan{std::move(plan_), std::move(origin_)};
  }

 private:
  /// One discovered fork/loop copy, pending grouping.
  struct CopyRec {
    PlanNodeId node = kInvalidPlanNode;
    VertexId source = kInvalidVertex;
    VertexId sink = kInvalidVertex;
    EdgeId copy_edge = kInvalidEdge;
  };

  Status SeedLeaves() {
    seeds_.assign(hg_.size(), {});
    // Per-subgraph multiset of "own" edges (those not inside any child):
    // every conforming copy contains each exactly once.
    own_edge_count_.assign(hg_.size(), {});
    for (size_t i = 0; i < hg_.size(); ++i) {
      for (const auto& [u, v] :
           hg_.node(static_cast<HierNodeId>(i)).own_edges) {
        ++own_edge_count_[i][PairKey(u, v)];
      }
    }
    std::unordered_map<uint64_t, HierNodeId> leaf_leaders;
    for (size_t i = 1; i < hg_.size(); ++i) {
      const HierNode& node = hg_.node(static_cast<HierNodeId>(i));
      if (!node.children.empty()) continue;
      auto [u, v] = node.leader_edge;
      leaf_leaders.emplace(PairKey(u, v), static_cast<HierNodeId>(i));
    }
    if (leaf_leaders.empty()) return Status::OK();
    for (EdgeId e = 0; e < mg_.edge_capacity(); ++e) {
      const MultiEdge& me = mg_.edge(e);
      auto it = leaf_leaders.find(PairKey(origin_[me.from], origin_[me.to]));
      if (it != leaf_leaders.end()) seeds_[it->second].push_back(e);
    }
    return Status::OK();
  }

  Status ProcessLevel(int32_t depth) {
    // Phase 1: discover all copies at this level.
    std::vector<std::vector<CopyRec>> copies_of;  // parallel to level list
    const auto& level = hg_.Level(depth);
    copies_of.resize(level.size());
    for (size_t li = 0; li < level.size(); ++li) {
      HierNodeId h = level[li];
      const HierNode& node = hg_.node(h);
      if (seeds_[h].empty()) {
        return Status::InvalidRun(
            "no copies of a specification subgraph appear in the run");
      }
      for (EdgeId seed : seeds_[h]) {
        if (!mg_.IsAlive(seed)) {
          return Status::InvalidRun(
              "two copy seeds landed in one subgraph copy (run does not "
              "conform to the specification)");
        }
        CopyRec rec;
        SKL_RETURN_NOT_OK(SearchCopy(h, node, seed, &rec));
        copies_of[li].push_back(rec);
      }
      seeds_[h].clear();
    }
    // Phase 2: group copies into F-/L- execution nodes.
    for (size_t li = 0; li < level.size(); ++li) {
      HierNodeId h = level[li];
      const HierNode& node = hg_.node(h);
      if (node.kind == HierKind::kFork) {
        SKL_RETURN_NOT_OK(GroupForkCopies(h, node, copies_of[li]));
      } else {
        SKL_RETURN_NOT_OK(GroupLoopCopies(h, node, copies_of[li]));
      }
    }
    return Status::OK();
  }

  /// Pruned undirected DFS (paper's SearchNodes) discovering one copy of H
  /// from a seed edge, assigning contexts and wiring child execution nodes,
  /// then collapsing the copy into a single special edge.
  Status SearchCopy(HierNodeId h, const HierNode& node, EdgeId seed,
                    CopyRec* out) {
    const bool is_fork = node.kind == HierKind::kFork;
    const VertexId spec_s = node.source;
    const VertexId spec_t = node.sink;
    const SubgraphInfo& sub = spec_.subgraphs()[node.subgraph_index];

    ++stamp_;
    if (edge_stamp_.size() < mg_.edge_capacity()) {
      edge_stamp_.resize(mg_.edge_capacity(), 0);
    }
    copy_edges_.clear();
    copy_verts_.clear();
    dfs_stack_.clear();

    VertexId copy_s = kInvalidVertex;
    VertexId copy_t = kInvalidVertex;
    auto touch = [&](VertexId v) -> Status {
      if (vert_stamp_[v] == stamp_) return Status::OK();
      vert_stamp_[v] = stamp_;
      VertexId ov = origin_[v];
      if (!sub.vertex_set.Test(ov)) {
        return Status::InvalidRun(
            "copy search left the subgraph's module set (run does not "
            "conform to the specification)");
      }
      if (ov == spec_s) {
        if (copy_s != kInvalidVertex) {
          return Status::InvalidRun("copy has two source vertices");
        }
        copy_s = v;
      } else if (ov == spec_t) {
        if (copy_t != kInvalidVertex) {
          return Status::InvalidRun("copy has two sink vertices");
        }
        copy_t = v;
      }
      copy_verts_.push_back(v);
      dfs_stack_.push_back(v);
      return Status::OK();
    };

    auto take_edge = [&](EdgeId e) -> Status {
      if (edge_stamp_[e] == stamp_) return Status::OK();
      edge_stamp_[e] = stamp_;
      copy_edges_.push_back(e);
      SKL_RETURN_NOT_OK(touch(mg_.edge(e).from));
      SKL_RETURN_NOT_OK(touch(mg_.edge(e).to));
      return Status::OK();
    };

    SKL_RETURN_NOT_OK(take_edge(seed));
    while (!dfs_stack_.empty()) {
      VertexId v = dfs_stack_.back();
      dfs_stack_.pop_back();
      VertexId ov = origin_[v];
      if (ov == spec_s) {
        // Forks never expand through their terminals; loops own their source
        // and all of its outgoing edges (completeness).
        if (is_fork) continue;
        for (EdgeId e : mg_.OutEdges(v)) SKL_RETURN_NOT_OK(take_edge(e));
      } else if (ov == spec_t) {
        if (is_fork) continue;
        for (EdgeId e : mg_.InEdges(v)) SKL_RETURN_NOT_OK(take_edge(e));
      } else {
        // Internal vertices are fully self-contained: every incident alive
        // edge belongs to this copy.
        for (EdgeId e : mg_.OutEdges(v)) SKL_RETURN_NOT_OK(take_edge(e));
        for (EdgeId e : mg_.InEdges(v)) SKL_RETURN_NOT_OK(take_edge(e));
      }
    }
    if (copy_s == kInvalidVertex || copy_t == kInvalidVertex) {
      return Status::InvalidRun("copy search found no source or sink");
    }

    PlanNodeId x = plan_.AddNode(
        is_fork ? PlanNodeType::kFPlus : PlanNodeType::kLPlus, h);
    // Context (Definition 9): every vertex of the copy not yet claimed by a
    // deeper copy; a fork copy does not dominate its shared terminals.
    for (VertexId v : copy_verts_) {
      if (is_fork && (v == copy_s || v == copy_t)) continue;
      if (plan_.ContextOf(v) == kInvalidPlanNode) plan_.AssignContext(v, x);
    }
    // Wire child execution (-) nodes whose special edges lie in this copy.
    // A conforming copy contains exactly one execution per hierarchy child
    // and each of the subgraph's own edges exactly once.
    child_tally_.assign(node.children.size(), 0);
    edge_tally_.clear();
    for (EdgeId e : copy_edges_) {
      int32_t tag = mg_.edge(e).tag;
      if (tag == -1) {
        ++edge_tally_[PairKey(origin_[mg_.edge(e).from],
                              origin_[mg_.edge(e).to])];
      } else if (tag == -2) {
        return Status::InvalidRun(
            "copy search crossed into a sibling copy (run does not conform "
            "to the specification)");
      }
      if (tag >= 0) {
        if (plan_.node(tag).parent != kInvalidPlanNode) {
          return Status::Internal("execution edge claimed by two copies");
        }
        plan_.SetParent(tag, x);
        HierNodeId child_hier = plan_.node(tag).hier;
        size_t ci = 0;
        while (ci < node.children.size() && node.children[ci] != child_hier) {
          ++ci;
        }
        if (ci == node.children.size()) {
          return Status::InvalidRun(
              "execution of a subgraph surfaced inside a copy of an "
              "unrelated subgraph");
        }
        ++child_tally_[ci];
      }
      mg_.RemoveEdge(e);
    }
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      if (child_tally_[ci] != 1) {
        return Status::InvalidRun(
            "copy does not contain exactly one execution of each nested "
            "fork/loop (run does not conform to the specification)");
      }
    }
    const auto& expected_edges = own_edge_count_[h];
    if (edge_tally_.size() != expected_edges.size()) {
      return Status::InvalidRun(
          "copy's edges do not match the subgraph (run does not conform to "
          "the specification)");
    }
    for (const auto& [key, count] : edge_tally_) {
      auto it = expected_edges.find(key);
      if (it == expected_edges.end() || it->second != count) {
        return Status::InvalidRun(
            "copy's edges do not match the subgraph (run does not conform "
            "to the specification)");
      }
    }
    out->node = x;
    out->source = copy_s;
    out->sink = copy_t;
    out->copy_edge = mg_.AddEdge(copy_s, copy_t, /*tag=*/-2);
    return Status::OK();
  }

  Status GroupForkCopies(HierNodeId h, const HierNode& node,
                         const std::vector<CopyRec>& copies) {
    std::unordered_map<uint64_t, PlanNodeId> groups;
    std::vector<std::pair<uint64_t, PlanNodeId>> group_order;
    for (const CopyRec& rec : copies) {
      uint64_t key = PairKey(rec.source, rec.sink);
      auto [it, inserted] = groups.emplace(key, kInvalidPlanNode);
      if (inserted) {
        it->second = plan_.AddNode(PlanNodeType::kFMinus, h);
        group_order.emplace_back(key, it->second);
      }
      plan_.SetParent(rec.node, it->second);
      mg_.RemoveEdge(rec.copy_edge);
    }
    for (auto [key, g] : group_order) {
      VertexId s = static_cast<VertexId>(key >> 32);
      VertexId t = static_cast<VertexId>(key & 0xffffffffu);
      EdgeId ge = mg_.AddEdge(s, t, /*tag=*/g);
      PropagateSeed(node, ge);
    }
    return Status::OK();
  }

  Status GroupLoopCopies(HierNodeId h, const HierNode& node,
                         const std::vector<CopyRec>& copies) {
    const VertexId spec_s = node.source;
    const VertexId spec_t = node.sink;
    std::unordered_map<VertexId, size_t> by_source;
    std::unordered_map<VertexId, size_t> by_sink;
    by_source.reserve(copies.size() * 2);
    by_sink.reserve(copies.size() * 2);
    for (size_t i = 0; i < copies.size(); ++i) {
      by_source.emplace(copies[i].source, i);
      by_sink.emplace(copies[i].sink, i);
    }
    std::vector<bool> grouped(copies.size(), false);

    // Returns the index of the serial predecessor/successor copy, or SIZE_MAX.
    auto serial_prev = [&](size_t i, EdgeId* edge) -> Result<size_t> {
      for (EdgeId e : mg_.InEdges(copies[i].source)) {
        if (origin_[mg_.edge(e).from] == spec_t) {
          auto it = by_sink.find(mg_.edge(e).from);
          if (it == by_sink.end()) {
            return Status::InvalidRun("dangling serial loop edge");
          }
          *edge = e;
          return it->second;
        }
      }
      return size_t{SIZE_MAX};
    };
    auto serial_next = [&](size_t i, EdgeId* edge) -> Result<size_t> {
      for (EdgeId e : mg_.OutEdges(copies[i].sink)) {
        if (origin_[mg_.edge(e).to] == spec_s) {
          auto it = by_source.find(mg_.edge(e).to);
          if (it == by_source.end()) {
            return Status::InvalidRun("dangling serial loop edge");
          }
          *edge = e;
          return it->second;
        }
      }
      return size_t{SIZE_MAX};
    };

    for (size_t i = 0; i < copies.size(); ++i) {
      if (grouped[i]) continue;
      // Walk back to the first copy of this serial chain.
      size_t start = i;
      for (size_t steps = 0;; ++steps) {
        if (steps > copies.size()) {
          return Status::InvalidRun("serial loop chain contains a cycle");
        }
        EdgeId unused;
        SKL_ASSIGN_OR_RETURN(size_t prev, serial_prev(start, &unused));
        if (prev == SIZE_MAX) break;
        start = prev;
      }
      // Walk forward collecting the ordered chain.
      std::vector<size_t> chain{start};
      std::vector<EdgeId> serial_edges;
      for (size_t cur = start;;) {
        EdgeId e = kInvalidEdge;
        SKL_ASSIGN_OR_RETURN(size_t next, serial_next(cur, &e));
        if (next == SIZE_MAX) break;
        if (grouped[next] || next == start) {
          return Status::InvalidRun("serial loop chain is inconsistent");
        }
        serial_edges.push_back(e);
        chain.push_back(next);
        cur = next;
        if (chain.size() > copies.size()) {
          return Status::InvalidRun("serial loop chain contains a cycle");
        }
      }
      PlanNodeId g = plan_.AddNode(PlanNodeType::kLMinus, h);
      for (size_t idx : chain) {
        grouped[idx] = true;
        plan_.SetParent(copies[idx].node, g);  // appends: keeps serial order
        mg_.RemoveEdge(copies[idx].copy_edge);
      }
      for (EdgeId e : serial_edges) mg_.RemoveEdge(e);
      EdgeId ge = mg_.AddEdge(copies[chain.front()].source,
                              copies[chain.back()].sink, /*tag=*/g);
      PropagateSeed(node, ge);
    }
    return Status::OK();
  }

  /// Registers a freshly created execution edge as a copy seed for the parent
  /// subgraph if this node is the parent's designated child.
  void PropagateSeed(const HierNode& node, EdgeId group_edge) {
    HierNodeId parent = node.parent;
    if (parent == kHierRoot) return;  // the root is never searched
    HierNodeId self =
        static_cast<HierNodeId>(node.subgraph_index + 1);
    if (hg_.node(parent).designated_child == self) {
      seeds_[parent].push_back(group_edge);
    }
  }

  Status FinishRoot() {
    // Any still-unparented execution node must hang off the root; the root,
    // like every copy, contains exactly one execution per hierarchy child.
    std::vector<uint32_t> tally(hg_.size(), 0);
    for (size_t i = 1; i < plan_.num_nodes(); ++i) {
      const PlanNode& n = plan_.node(static_cast<PlanNodeId>(i));
      if (n.parent != kInvalidPlanNode) continue;
      if (IsPlusNode(n.type)) {
        return Status::Internal("ungrouped copy node");
      }
      if (hg_.node(n.hier).parent != kHierRoot) {
        return Status::InvalidRun(
            "nested execution never enclosed by a parent copy (run does not "
            "conform to the specification)");
      }
      ++tally[n.hier];
      plan_.SetParent(static_cast<PlanNodeId>(i), kPlanRoot);
    }
    for (HierNodeId c : hg_.node(kHierRoot).children) {
      if (tally[c] != 1) {
        return Status::InvalidRun(
            "top level does not contain exactly one execution of each "
            "fork/loop (run does not conform to the specification)");
      }
    }
    for (VertexId v = 0; v < plan_.num_run_vertices(); ++v) {
      if (plan_.ContextOf(v) == kInvalidPlanNode) {
        plan_.AssignContext(v, kPlanRoot);
      }
    }
    return Status::OK();
  }

  /// After all collapses the surviving graph must be exactly the
  /// specification's root with child executions contracted: every root-owned
  /// edge once, every root-owned module once.
  Status ValidateRootLevel() {
    const HierNode& root = hg_.node(kHierRoot);
    std::unordered_map<uint64_t, int> expected;
    for (const auto& [u, v] : root.own_edges) ++expected[PairKey(u, v)];
    for (EdgeId e = 0; e < mg_.edge_capacity(); ++e) {
      if (!mg_.IsAlive(e)) continue;
      const MultiEdge& me = mg_.edge(e);
      if (me.tag == -2) return Status::Internal("left-over copy edge");
      if (me.tag >= 0) {
        if (plan_.node(me.tag).parent != kPlanRoot) {
          return Status::Internal("left-over nested execution edge");
        }
        continue;
      }
      auto it = expected.find(PairKey(origin_[me.from], origin_[me.to]));
      if (it == expected.end() || it->second == 0) {
        return Status::InvalidRun(
            "run has an edge the specification's top level does not (run "
            "does not conform to the specification)");
      }
      --it->second;
    }
    for (const auto& entry : expected) {
      if (entry.second != 0) {
        return Status::InvalidRun(
            "run is missing a top-level specification edge");
      }
    }
    // Root-context vertices must carry distinct root-owned modules, one each.
    std::vector<uint8_t> seen(spec_.graph().num_vertices(), 0);
    size_t root_ctx = 0;
    for (VertexId v = 0; v < plan_.num_run_vertices(); ++v) {
      if (plan_.ContextOf(v) != kPlanRoot) continue;
      ++root_ctx;
      VertexId ov = origin_[v];
      if (hg_.OwnerOf(ov) != kHierRoot) {
        return Status::InvalidRun(
            "vertex outside every fork/loop copy is not a top-level module");
      }
      if (seen[ov]++) {
        return Status::InvalidRun(
            "two top-level run vertices share a module name");
      }
    }
    if (root_ctx != hg_.OwnVertices(kHierRoot).size()) {
      return Status::InvalidRun("run is missing a top-level module");
    }
    SKL_RETURN_NOT_OK(plan_.Validate(num_run_edges_));
    return Status::OK();
  }

  const Specification& spec_;
  const Hierarchy& hg_;
  std::vector<VertexId> origin_;
  Multigraph mg_;
  ExecutionPlan plan_;
  size_t num_run_edges_;

  std::vector<std::vector<EdgeId>> seeds_;
  std::vector<uint32_t> vert_stamp_;
  std::vector<uint32_t> edge_stamp_;
  uint32_t stamp_ = 0;
  // Scratch buffers reused across SearchCopy calls.
  std::vector<EdgeId> copy_edges_;
  std::vector<VertexId> copy_verts_;
  std::vector<VertexId> dfs_stack_;
  std::vector<uint32_t> child_tally_;
  std::vector<std::unordered_map<uint64_t, int>> own_edge_count_;
  std::unordered_map<uint64_t, int> edge_tally_;
};

}  // namespace

Result<RecoveredPlan> ConstructPlan(const Specification& spec,
                                    const Run& run) {
  SKL_ASSIGN_OR_RETURN(std::vector<VertexId> origin,
                       ComputeOrigin(spec, run));
  return ConstructPlanWithOrigin(spec, run, std::move(origin));
}

Result<RecoveredPlan> ConstructPlanWithOrigin(const Specification& spec,
                                              const Run& run,
                                              std::vector<VertexId> origin) {
  if (origin.size() != run.num_vertices()) {
    return Status::InvalidArgument("origin size mismatch");
  }
  PlanRecovery recovery(spec, run, std::move(origin));
  return recovery.Build();
}

}  // namespace skl
