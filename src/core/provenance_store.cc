#include "src/core/provenance_store.h"

#include <algorithm>

#include "src/common/bit_codec.h"
#include "src/core/label_codec.h"

namespace skl {

namespace {
constexpr uint32_t kMagic = 0x534b4c50;  // "SKLP"
// v1: untagged. v2 adds the scheme tag right after the version varint; the
// rest of the layout is bit-identical to v1, so v1 blobs keep loading.
constexpr uint32_t kVersion = 2;
constexpr uint64_t kMaxSchemeTagBytes = 256;
}  // namespace

ProvenanceStore& ProvenanceStore::operator=(const ProvenanceStore& other) {
  if (this == &other) return *this;
  scheme_tag_ = other.scheme_tag_;
  if (other.backing_ != nullptr) {
    // View: share the backing, copy the column spans verbatim.
    arena_.clear();
    backing_ = other.backing_;
    q1_ = other.q1_;
    q2_ = other.q2_;
    q3_ = other.q3_;
    origin_ = other.origin_;
    item_writers_ = other.item_writers_;
    reader_offsets_ = other.reader_offsets_;
    readers_ = other.readers_;
  } else {
    // Owned: copy the arena and re-derive the spans from the fixed layout.
    backing_.reset();
    arena_ = other.arena_;
    BindToArena(other.q1_.size(), other.item_writers_.size(),
                other.readers_.size());
  }
  return *this;
}

void ProvenanceStore::BindToArena(size_t n, size_t items,
                                  size_t readers_total) {
  if (arena_.empty()) {
    q1_ = q2_ = q3_ = origin_ = {};
    item_writers_ = reader_offsets_ = readers_ = {};
    return;
  }
  const uint32_t* base = arena_.data();
  q1_ = {base, n};
  q2_ = {base + n, n};
  q3_ = {base + 2 * n, n};
  origin_ = {base + 3 * n, n};
  item_writers_ = {base + 4 * n, items};
  reader_offsets_ = {base + 4 * n + items, items + 1};
  readers_ = {base + 4 * n + 2 * items + 1, readers_total};
}

std::vector<uint32_t>& ProvenanceStore::AllocateArena(size_t n, size_t items,
                                                      size_t readers_total) {
  arena_.assign(4 * n + 2 * items + 1 + readers_total, 0);
  backing_.reset();
  BindToArena(n, items, readers_total);
  return arena_;
}

ProvenanceStore ProvenanceStore::Capture(const RunLabeling& labeling,
                                         const DataCatalog* catalog,
                                         std::string_view scheme_tag) {
  ProvenanceStore store;
  store.scheme_tag_.assign(scheme_tag);
  const std::vector<RunLabel>& labels = labeling.labels();
  const size_t n = labels.size();
  const size_t items = catalog != nullptr ? catalog->size() : 0;
  size_t readers_total = 0;
  for (DataItemId x = 0; x < items; ++x) {
    readers_total += catalog->InputsOf(x).size();
  }
  std::vector<uint32_t>& arena = store.AllocateArena(n, items, readers_total);
  uint32_t* q1 = arena.data();
  uint32_t* q2 = q1 + n;
  uint32_t* q3 = q2 + n;
  uint32_t* origin = q3 + n;
  for (size_t v = 0; v < n; ++v) {
    q1[v] = labels[v].q1;
    q2[v] = labels[v].q2;
    q3[v] = labels[v].q3;
    origin[v] = labels[v].origin;
  }
  uint32_t* writers = origin + n;
  uint32_t* offsets = writers + items;
  uint32_t* readers = offsets + items + 1;
  uint32_t off = 0;
  offsets[0] = 0;
  for (DataItemId x = 0; x < items; ++x) {
    writers[x] = catalog->OutputOf(x);
    for (VertexId r : catalog->InputsOf(x)) readers[off++] = r;
    offsets[x + 1] = off;
  }
  return store;
}

ProvenanceStore ProvenanceStore::FromColumns(
    std::span<const uint32_t> q1, std::span<const uint32_t> q2,
    std::span<const uint32_t> q3, std::span<const uint32_t> origin,
    std::span<const uint32_t> item_writers,
    std::span<const uint32_t> reader_offsets,
    std::span<const uint32_t> readers, std::string scheme_tag,
    std::shared_ptr<const void> backing) {
  ProvenanceStore store;
  store.q1_ = q1;
  store.q2_ = q2;
  store.q3_ = q3;
  store.origin_ = origin;
  store.item_writers_ = item_writers;
  store.reader_offsets_ = reader_offsets;
  store.readers_ = readers;
  store.scheme_tag_ = std::move(scheme_tag);
  store.backing_ = std::move(backing);
  return store;
}

std::vector<uint8_t> ProvenanceStore::Serialize() const {
  BitWriter writer;
  writer.Write(kMagic, 32);
  writer.WriteVarint(kVersion);
  writer.WriteVarint(scheme_tag_.size());
  writer.WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(scheme_tag_.data()),
      scheme_tag_.size()));
  // Labels block: reuse the label codec widths.
  const uint32_t n = static_cast<uint32_t>(q1_.size());
  uint32_t max_q = 1, max_origin = 0;
  for (uint32_t q : q1_) max_q = std::max(max_q, q);
  for (uint32_t q : q2_) max_q = std::max(max_q, q);
  for (uint32_t q : q3_) max_q = std::max(max_q, q);
  for (uint32_t o : origin_) max_origin = std::max(max_origin, o);
  const int q_bits = BitsForCount(max_q + 1);
  const int o_bits = BitsForCount(max_origin + 2);
  writer.WriteVarint(n);
  writer.WriteVarint(static_cast<uint64_t>(q_bits));
  writer.WriteVarint(static_cast<uint64_t>(o_bits));
  for (uint32_t v = 0; v < n; ++v) {
    writer.Write(q1_[v], q_bits);
    writer.Write(q2_[v], q_bits);
    writer.Write(q3_[v], q_bits);
    writer.Write(origin_[v], o_bits);
  }
  // Catalog block.
  writer.WriteVarint(item_writers_.size());
  for (size_t x = 0; x < item_writers_.size(); ++x) {
    writer.WriteVarint(item_writers_[x]);
    std::span<const VertexId> rs = item_readers(static_cast<DataItemId>(x));
    writer.WriteVarint(rs.size());
    for (VertexId r : rs) writer.WriteVarint(r);
  }
  return writer.Finish();
}

Result<ProvenanceStore> ProvenanceStore::Deserialize(
    const std::vector<uint8_t>& bytes) {
  return Deserialize(std::span<const uint8_t>(bytes));
}

Result<ProvenanceStore> ProvenanceStore::Deserialize(
    std::span<const uint8_t> bytes) {
  BitReader reader(bytes.data(), bytes.size());
  uint64_t magic, version, n, q_bits, o_bits;
  SKL_RETURN_NOT_OK(reader.Read(32, &magic));
  if (magic != kMagic) return Status::ParseError("not a provenance store");
  SKL_RETURN_NOT_OK(reader.ReadVarint(&version));
  if (version != 1 && version != kVersion) {
    return Status::ParseError("unsupported store version");
  }
  ProvenanceStore store;
  if (version >= 2) {
    uint64_t tag_len;
    SKL_RETURN_NOT_OK(reader.ReadVarint(&tag_len));
    if (tag_len > kMaxSchemeTagBytes) {
      return Status::ParseError("corrupt store header (scheme tag too long)");
    }
    std::span<const uint8_t> tag;
    SKL_RETURN_NOT_OK(reader.ReadBytes(tag_len, &tag));
    store.scheme_tag_.assign(tag.begin(), tag.end());
  }
  SKL_RETURN_NOT_OK(reader.ReadVarint(&n));
  SKL_RETURN_NOT_OK(reader.ReadVarint(&q_bits));
  SKL_RETURN_NOT_OK(reader.ReadVarint(&o_bits));
  if (q_bits == 0 || q_bits > 32 || o_bits == 0 || o_bits > 32) {
    return Status::ParseError("corrupt store header");
  }
  // A valid blob carries n * (3*q_bits + o_bits) label bits, so n cannot
  // exceed what the byte stream could possibly hold.
  if (n > bytes.size() * 8 / (3 * q_bits + o_bits)) {
    return Status::ParseError("corrupt store header");
  }
  // Labels land at the front of the arena; the catalog's size is unknown
  // until parsed, so it goes through temporaries and is appended after.
  std::vector<uint32_t> arena(4 * n, 0);
  uint32_t* col_q1 = arena.data();
  uint32_t* col_q2 = col_q1 + n;
  uint32_t* col_q3 = col_q2 + n;
  uint32_t* col_origin = col_q3 + n;
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t q1, q2, q3, origin;
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q1));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q2));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q3));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(o_bits), &origin));
    col_q1[v] = static_cast<uint32_t>(q1);
    col_q2[v] = static_cast<uint32_t>(q2);
    col_q3[v] = static_cast<uint32_t>(q3);
    col_origin[v] = static_cast<uint32_t>(origin);
  }
  uint64_t items;
  SKL_RETURN_NOT_OK(reader.ReadVarint(&items));
  if (items > bytes.size()) {
    return Status::ParseError("corrupt store header");
  }
  std::vector<uint32_t> writers(items, 0);
  std::vector<uint32_t> offsets(items + 1, 0);
  std::vector<uint32_t> readers;
  for (uint64_t x = 0; x < items; ++x) {
    uint64_t writer_v, n_readers;
    SKL_RETURN_NOT_OK(reader.ReadVarint(&writer_v));
    if (writer_v >= n) return Status::ParseError("item writer out of range");
    writers[x] = static_cast<uint32_t>(writer_v);
    SKL_RETURN_NOT_OK(reader.ReadVarint(&n_readers));
    if (n_readers > n) return Status::ParseError("reader count out of range");
    for (uint64_t r = 0; r < n_readers; ++r) {
      uint64_t reader_v;
      SKL_RETURN_NOT_OK(reader.ReadVarint(&reader_v));
      if (reader_v >= n) {
        return Status::ParseError("item reader out of range");
      }
      readers.push_back(static_cast<uint32_t>(reader_v));
    }
    offsets[x + 1] = static_cast<uint32_t>(readers.size());
  }
  arena.insert(arena.end(), writers.begin(), writers.end());
  arena.insert(arena.end(), offsets.begin(), offsets.end());
  arena.insert(arena.end(), readers.begin(), readers.end());
  store.arena_ = std::move(arena);
  store.BindToArena(n, items, readers.size());
  return store;
}

}  // namespace skl
