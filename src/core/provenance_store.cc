#include "src/core/provenance_store.h"

#include <algorithm>

#include "src/common/bit_codec.h"
#include "src/core/label_codec.h"

namespace skl {

namespace {
constexpr uint32_t kMagic = 0x534b4c50;  // "SKLP"
constexpr uint32_t kVersion = 1;
}  // namespace

ProvenanceStore ProvenanceStore::Capture(const RunLabeling& labeling,
                                         const DataCatalog* catalog) {
  ProvenanceStore store;
  store.labels_ = labeling.labels();
  if (catalog != nullptr) {
    store.item_writers_.reserve(catalog->size());
    store.item_readers_.reserve(catalog->size());
    for (DataItemId x = 0; x < catalog->size(); ++x) {
      store.item_writers_.push_back(catalog->OutputOf(x));
      store.item_readers_.push_back(catalog->InputsOf(x));
    }
  }
  return store;
}

std::vector<uint8_t> ProvenanceStore::Serialize() const {
  BitWriter writer;
  writer.Write(kMagic, 32);
  writer.WriteVarint(kVersion);
  // Labels block: reuse the label codec widths.
  const uint32_t n = static_cast<uint32_t>(labels_.size());
  uint32_t max_q = 1, max_origin = 0;
  for (const RunLabel& l : labels_) {
    max_q = std::max({max_q, l.q1, l.q2, l.q3});
    max_origin = std::max(max_origin, l.origin);
  }
  const int q_bits = BitsForCount(max_q + 1);
  const int o_bits = BitsForCount(max_origin + 2);
  writer.WriteVarint(n);
  writer.WriteVarint(static_cast<uint64_t>(q_bits));
  writer.WriteVarint(static_cast<uint64_t>(o_bits));
  for (const RunLabel& l : labels_) {
    writer.Write(l.q1, q_bits);
    writer.Write(l.q2, q_bits);
    writer.Write(l.q3, q_bits);
    writer.Write(l.origin, o_bits);
  }
  // Catalog block.
  writer.WriteVarint(item_writers_.size());
  for (size_t x = 0; x < item_writers_.size(); ++x) {
    writer.WriteVarint(item_writers_[x]);
    writer.WriteVarint(item_readers_[x].size());
    for (VertexId r : item_readers_[x]) writer.WriteVarint(r);
  }
  return writer.Finish();
}

Result<ProvenanceStore> ProvenanceStore::Deserialize(
    const std::vector<uint8_t>& bytes) {
  return Deserialize(std::span<const uint8_t>(bytes));
}

Result<ProvenanceStore> ProvenanceStore::Deserialize(
    std::span<const uint8_t> bytes) {
  BitReader reader(bytes.data(), bytes.size());
  uint64_t magic, version, n, q_bits, o_bits;
  SKL_RETURN_NOT_OK(reader.Read(32, &magic));
  if (magic != kMagic) return Status::ParseError("not a provenance store");
  SKL_RETURN_NOT_OK(reader.ReadVarint(&version));
  if (version != kVersion) {
    return Status::ParseError("unsupported store version");
  }
  SKL_RETURN_NOT_OK(reader.ReadVarint(&n));
  SKL_RETURN_NOT_OK(reader.ReadVarint(&q_bits));
  SKL_RETURN_NOT_OK(reader.ReadVarint(&o_bits));
  if (q_bits == 0 || q_bits > 32 || o_bits == 0 || o_bits > 32) {
    return Status::ParseError("corrupt store header");
  }
  ProvenanceStore store;
  store.labels_.resize(n);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t q1, q2, q3, origin;
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q1));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q2));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(q_bits), &q3));
    SKL_RETURN_NOT_OK(reader.Read(static_cast<int>(o_bits), &origin));
    store.labels_[v] = RunLabel{
        static_cast<uint32_t>(q1), static_cast<uint32_t>(q2),
        static_cast<uint32_t>(q3), static_cast<VertexId>(origin)};
  }
  uint64_t items;
  SKL_RETURN_NOT_OK(reader.ReadVarint(&items));
  store.item_writers_.resize(items);
  store.item_readers_.resize(items);
  for (uint64_t x = 0; x < items; ++x) {
    uint64_t writer_v, readers;
    SKL_RETURN_NOT_OK(reader.ReadVarint(&writer_v));
    if (writer_v >= n) return Status::ParseError("item writer out of range");
    store.item_writers_[x] = static_cast<VertexId>(writer_v);
    SKL_RETURN_NOT_OK(reader.ReadVarint(&readers));
    if (readers > n) return Status::ParseError("reader count out of range");
    store.item_readers_[x].resize(readers);
    for (uint64_t r = 0; r < readers; ++r) {
      uint64_t reader_v;
      SKL_RETURN_NOT_OK(reader.ReadVarint(&reader_v));
      if (reader_v >= n) {
        return Status::ParseError("item reader out of range");
      }
      store.item_readers_[x][r] = static_cast<VertexId>(reader_v);
    }
  }
  return store;
}

}  // namespace skl
