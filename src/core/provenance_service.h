// ProvenanceService: the service-level entry point of the library, built for
// the paper's amortization argument — label the specification skeleton once,
// then cheaply label, query and persist *many* runs against it.
//
// The service owns the specification and its built skeleton scheme, and keeps
// a registry of labeled runs behind opaque RunId handles. Three ingestion
// paths feed the registry:
//
//   skl::ProvenanceService svc = *ProvenanceService::Create(
//       std::move(spec), SpecSchemeKind::kTcm);
//   RunId a = *svc.AddRun(run);                       // raw run graph
//   RunId b = *svc.AddRunWithPlan(run, plan, origin); // engine-provided plan
//   RunSession s = svc.OpenSession();                 // live event stream
//   s.ExecuteModule("align"); ...
//   RunId c = *std::move(s).Seal();
//
// Bulk ingestion labels a whole batch of runs concurrently on an internal
// ThreadPool (sized by Options::num_threads) and publishes the RunIds in
// input order under one writer lock — the paper's "many runs" half of the
// amortization claim, parallelized:
//
//   auto svc = *ProvenanceService::Create(std::move(spec),
//                                         SpecSchemeKind::kTcm,
//                                         {.num_threads = 8});
//   std::vector<Result<RunId>> ids = svc.AddRunsParallel(runs);
//
// Queries are self-contained — no scheme parameter, unlike the lower-level
// facades — and take only the owning shard's read lock, so concurrent
// readers never block each other (and readers of different shards share
// nothing at all):
//
//   bool dep = *svc.Reaches(a, v, w);
//   auto answers = *svc.ReachesBatch(a, pairs);       // one lock, many pairs
//
// Persistence round-trips through the ProvenanceStore blob format; an
// imported blob is immediately queryable against the service's scheme:
//
//   std::vector<uint8_t> blob = *svc.ExportRun(a);
//   RunId restored = *svc.ImportRun(blob);
//
// Threading contract: every public method is safe to call concurrently.
// The registry behind the service is sharded and lock-striped
// (src/core/run_registry.h): a query locks only the one shard that owns
// its run — shared, so readers never block each other — and each shard
// memoizes answers in a generation-stamped QueryCache
// (src/core/query_cache.h; Options::cache_slots sizes it, 0 disables).
// Ingestion does the expensive labeling outside any lock and takes one
// shard's writer lock only to publish; queries on other shards proceed
// entirely undisturbed, and queries on the same shard keep answering while
// a bulk batch is being labeled. The service must not be moved while other
// threads use it or while sessions are open.
#ifndef SKL_CORE_PROVENANCE_SERVICE_H_
#define SKL_CORE_PROVENANCE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/data_provenance.h"
#include "src/core/execution_plan.h"
#include "src/core/online_labeler.h"
#include "src/core/run_labeling.h"
#include "src/core/run_registry.h"
#include "src/speclabel/scheme.h"
#include "src/workflow/run.h"
#include "src/workflow/spec_delta.h"
#include "src/workflow/specification.h"

namespace skl {

class OpLog;           // src/replication/oplog.h
class SnapshotWriter;  // src/io/snapshot.h
class SnapshotReader;

/// Opaque handle to a run registered with a ProvenanceService. Handles are
/// never reused, so a stale handle (e.g. after RemoveRun) fails cleanly with
/// NotFound instead of silently addressing another run.
class RunId {
 public:
  RunId() = default;

  uint64_t value() const { return value_; }
  bool valid() const { return value_ != 0; }

  friend bool operator==(RunId a, RunId b) { return a.value_ == b.value_; }
  friend bool operator!=(RunId a, RunId b) { return a.value_ != b.value_; }

  /// Reconstructs a handle from its numeric value (e.g. parsed from a CLI
  /// argument or a log line). Unknown values fail queries with NotFound.
  static RunId FromValue(uint64_t value) { return RunId(value); }

 private:
  friend class ProvenanceService;
  explicit RunId(uint64_t value) : value_(value) {}

  uint64_t value_ = 0;  // 0 = invalid
};

/// Pair types for the batch query variants.
using VertexPair = std::pair<VertexId, VertexId>;
using ItemPair = std::pair<DataItemId, DataItemId>;

// RunStats (per-run bookkeeping returned by ProvenanceService::Stats) and
// RunRecord live in src/core/run_registry.h, next to the sharded registry
// that stores them.

/// Service-wide cumulative counters since service creation (they are not
/// part of a snapshot: a restored service — including one swapped in by
/// the net server's kLoadSnapshot — starts counting afresh; see
/// docs/NETWORK.md). Query counters tally *answered* queries — a NotFound
/// or out-of-range request does not count as served. Batch calls count one
/// per answered pair, plus one batch_calls tick per invocation. Cache
/// counters tally result-cache lookups on answered queries (both stay 0
/// when the cache is disabled via Options::cache_slots = 0).
struct ServiceStats {
  uint64_t num_runs = 0;             ///< currently registered (point in time)
  uint64_t reaches_queries = 0;      ///< Reaches + ReachesBatch pairs
  uint64_t depends_on_queries = 0;   ///< DependsOn + DependsOnBatch pairs
  uint64_t module_data_queries = 0;  ///< ModuleDependsOnData answers
  uint64_t data_module_queries = 0;  ///< DataDependsOnModule answers
  uint64_t batch_calls = 0;          ///< ReachesBatch + DependsOnBatch calls
  uint64_t runs_ingested = 0;        ///< successful registrations, all paths
  uint64_t runs_imported = 0;        ///< subset of runs_ingested via ImportRun
  uint64_t runs_removed = 0;
  uint64_t bulk_batches = 0;         ///< AddRuns*Parallel invocations
  uint64_t snapshot_saves = 0;       ///< successful SaveSnapshot calls
  uint64_t cache_hits = 0;           ///< result-cache hits
  uint64_t cache_misses = 0;         ///< result-cache misses (computed)
  /// Replication state (docs/REPLICATION.md): the op-log LSN this service
  /// has durably appended (primary) or applied (replica). 0 when no op-log
  /// is attached. Over the wire the server fills both fields; a replica's
  /// target lags behind the primary's last published LSN it has seen.
  uint64_t replication_lsn = 0;
  uint64_t replication_target_lsn = 0;
  /// Reactor counters (protocol v4, docs/NETWORK.md): filled by the net
  /// server when the stats travel over the wire, always 0 on a local
  /// service (there is no server underneath). Unlike the counters above,
  /// these describe the server *process* — they do NOT reset when a
  /// kLoadSnapshot swaps the service.
  uint64_t connections_open = 0;           ///< currently connected peers
  uint64_t connections_accepted = 0;       ///< cumulative accepts
  uint64_t connections_timed_out = 0;      ///< closed by the idle reaper
  uint64_t connections_backpressured = 0;  ///< write-buffer cap trips
  uint64_t epoll_wakeups = 0;              ///< reactor loop turns
  uint64_t accept_backoffs = 0;            ///< fd-exhaustion accept retries
  /// Current spec epoch (protocol v6, docs/UPDATES.md): 1 at creation,
  /// +1 per successful ApplySpecDelta. Unlike the cumulative counters this
  /// IS part of a snapshot — a restored service resumes at the saved epoch.
  uint64_t spec_epoch = 1;
};

class RunSession;

/// One run for the bulk engine-log ingestion path
/// (ProvenanceService::AddRunsWithPlansParallel). All pointers are borrowed
/// and must stay valid for the duration of the call.
struct PlannedRun {
  const Run* run = nullptr;
  const ExecutionPlan* plan = nullptr;
  std::span<const VertexId> origin;
  const DataCatalog* catalog = nullptr;  ///< optional
};

/// Service-wide knobs, fixed at Create time. (Namespace-scope so it can be
/// brace-defaulted in Create's declaration; spelled
/// ProvenanceService::Options at call sites.)
struct ProvenanceServiceOptions {
  /// Worker threads for the bulk ingestion paths. 0 = one per hardware
  /// thread. The pool is started lazily on the first bulk call, so
  /// services that never bulk-ingest spawn no threads.
  unsigned num_threads = 0;
  /// Bulk ingestion semantics on failure. false: every run in the batch
  /// is attempted and gets its own Result; successes are published.
  /// true: all-or-nothing — the first failure cancels the rest of the
  /// batch and nothing is published.
  bool fail_fast = false;
  /// Registry shards (lock stripes); rounded up to a power of two and
  /// clamped to [1, 1024]. More shards = less reader/writer contention;
  /// 1 reproduces the old single-lock behavior.
  size_t num_shards = 8;
  /// Reachability result-cache slots per shard (rounded up to a power of
  /// two, 32 bytes each). 0 disables caching — the configuration the
  /// differential conformance test replays against.
  size_t cache_slots = 4096;
  /// Forces ApplySpecDelta to rebuild the new epoch's scheme from scratch
  /// instead of relabeling the dirty region incrementally. The two paths
  /// must be bit-identical — the differential update harness
  /// (tests/spec_update_differential_test.cc) runs a twin with this on and
  /// compares every answer; the knob exists for that harness and for the
  /// bench's before/after columns, not for production use.
  bool full_rebuild_on_delta = false;
};

/// Knobs for ProvenanceService::LoadSnapshot, separate from the service
/// Options because they describe how to *read the file*, not the restored
/// service. (Namespace-scope for the same brace-defaulting reason as
/// ProvenanceServiceOptions.)
struct SnapshotLoadOptions {
  /// Request the zero-copy path: mmap the snapshot read-only and let the
  /// restored runs view the label columns in place (v2 columnar snapshots
  /// only). Falls back to the copying reader when the platform cannot map
  /// the file or `SKL_NO_MMAP` is set in the environment; v1 snapshots
  /// load through the map but decode into owned memory either way. See
  /// docs/PERSISTENCE.md for the mapping lifetime contract.
  bool use_mmap = false;
};

/// One specification + one built skeleton scheme + many labeled runs.
class ProvenanceService {
 public:
  using Options = ProvenanceServiceOptions;

  /// Builds the skeleton index once over `spec` (moved in). All runs later
  /// registered with the service are labeled and queried against it.
  static Result<ProvenanceService> Create(Specification spec,
                                          SpecSchemeKind scheme_kind,
                                          Options options = {});
  /// As above with a caller-constructed (not yet built) scheme.
  static Result<ProvenanceService> Create(
      Specification spec, std::unique_ptr<SpecLabelingScheme> scheme,
      Options options = {});

  ProvenanceService(ProvenanceService&&) = default;
  ProvenanceService& operator=(ProvenanceService&&) = default;

  // ------------------------------------------------------------ ingestion --

  /// Labels a raw run graph (recovers plan + context, Section 5) and
  /// registers it. The run graph can be discarded afterwards; only the
  /// bit-packed labels (and the catalog, if given) are retained.
  Result<RunId> AddRun(const Run& run, const DataCatalog* catalog = nullptr);

  /// Registers a run whose plan + context are already known (e.g. from the
  /// workflow engine's log, as Taverna provides).
  Result<RunId> AddRunWithPlan(const Run& run, const ExecutionPlan& plan,
                               std::vector<VertexId> origin,
                               const DataCatalog* catalog = nullptr);

  /// Bulk variant of AddRun: labels every run in the batch concurrently on
  /// the service's thread pool (Options::num_threads), then publishes the
  /// successes under one writer lock. results[i] corresponds to runs[i],
  /// and published ids are ascending in input order. Queries on already
  /// registered runs keep running while the batch is labeled.
  ///
  /// `catalogs`, if nonempty, must be runs.size() pointers (entries may be
  /// null). Under Options::fail_fast the batch is all-or-nothing: the first
  /// failing run keeps its error, every other entry reports Cancelled, and
  /// nothing is published.
  std::vector<Result<RunId>> AddRunsParallel(
      std::span<const Run> runs,
      std::span<const DataCatalog* const> catalogs = {});

  /// Bulk variant of AddRunWithPlan; same ordering, threading and fail-fast
  /// semantics as AddRunsParallel, minus the plan-recovery step.
  std::vector<Result<RunId>> AddRunsWithPlansParallel(
      std::span<const PlannedRun> runs);

  /// Opens a live labeling session for an in-flight run (Section 9): feed
  /// events as they happen, query intermediate results mid-run, then Seal()
  /// into a registered run. The session must not outlive the service.
  RunSession OpenSession();

  /// Removes a run. Its RunId is never reused.
  Status RemoveRun(RunId id);

  // -------------------------------------------------------------- queries --

  // Every query answers against the scheme of the epoch the run was
  // ingested under — NOT the current head epoch — so a spec delta never
  // changes an existing answer (docs/UPDATES.md). `at_epoch` pins the
  // query: 0 (the default) accepts whatever epoch the run is frozen to;
  // a nonzero value that differs from the run's epoch fails with
  // kEpochMismatch instead of answering against a scheme the caller did
  // not ask for.

  /// Module-level reachability (reflexive): is there a path v ~> w in the
  /// identified run?
  Result<bool> Reaches(RunId id, VertexId v, VertexId w,
                       uint64_t at_epoch = 0) const;

  /// Answers many reachability queries under one reader lock; answers[i]
  /// corresponds to pairs[i].
  Result<std::vector<bool>> ReachesBatch(RunId id,
                                         std::span<const VertexPair> pairs,
                                         uint64_t at_epoch = 0) const;

  /// Item-level dependency (Section 6): does item x depend on x_from?
  Result<bool> DependsOn(RunId id, DataItemId x, DataItemId x_from,
                         uint64_t at_epoch = 0) const;

  /// Batch variant of DependsOn; answers[i] corresponds to pairs[i].
  Result<std::vector<bool>> DependsOnBatch(RunId id,
                                           std::span<const ItemPair> pairs,
                                           uint64_t at_epoch = 0) const;

  /// Did module execution v read data derived from item x?
  Result<bool> ModuleDependsOnData(RunId id, VertexId v, DataItemId x,
                                   uint64_t at_epoch = 0) const;

  /// Is item x downstream of module execution v?
  Result<bool> DataDependsOnModule(RunId id, DataItemId x, VertexId v,
                                   uint64_t at_epoch = 0) const;

  // ------------------------------------------------------------ spec epochs --

  /// One entry of the append-only spec-epoch chain (docs/UPDATES.md).
  /// Entries are never destroyed or mutated once published, so the
  /// pointers handed out to run records and sessions stay valid for the
  /// service's lifetime.
  struct SpecEpoch {
    uint64_t number = 1;
    std::unique_ptr<const Specification> spec;
    std::unique_ptr<SpecLabelingScheme> scheme;
    /// The delta that created this epoch (meaningless for epoch 1).
    SpecDelta delta;
  };

  /// Applies one specification edit, opening a new spec epoch: the head
  /// specification is rebuilt through the delta (re-validating Definitions
  /// 1-3), the labeling scheme is relabeled over the delta's dirty region
  /// (or fully rebuilt under Options::full_rebuild_on_delta), and runs
  /// ingested from now on are labeled against the new epoch. Existing runs
  /// are untouched: they stay frozen to — and queryable against — their
  /// own epoch's scheme. Returns the new epoch number.
  ///
  /// Rejections (unknown module, duplicate edge, a rebuild that violates
  /// the workflow model, RemoveModule while live head-epoch runs reference
  /// the module, or a caller-constructed non-bundled scheme) leave the
  /// service entirely unchanged. With an op-log attached the delta is
  /// appended before this returns (append-before-ack), so replicas and
  /// RecoverPrimary replay it deterministically.
  Result<uint64_t> ApplySpecDelta(const SpecDelta& delta);

  /// Replica-side apply of a shipped kSpecDelta op (and the restore path
  /// of log recovery): applies `delta`, expecting the chain to land on
  /// `target_epoch`. Idempotent — a target at or below the current head is
  /// skipped silently (snapshot+stream overlap). Never appended to an
  /// attached op-log and exempt from the live-dependent-run guard (the
  /// primary already enforced it).
  Status ApplySpecDeltaReplicated(const SpecDelta& delta,
                                  uint64_t target_epoch);

  /// Current spec epoch: 1 at creation, +1 per successful ApplySpecDelta.
  uint64_t spec_epoch() const {
    return head_epoch_entry().number;
  }

  /// The chain entry a given epoch number, or null when out of range.
  /// Entry addresses are stable for the service's lifetime.
  const SpecEpoch* FindEpoch(uint64_t number) const;

  // ---------------------------------------------------------- persistence --

  /// Serializes a registered run to the self-describing ProvenanceStore
  /// blob (labels + catalog; the paper's "what the provenance database
  /// stores").
  Result<std::vector<uint8_t>> ExportRun(RunId id) const;

  /// Registers a run from a blob previously produced by ExportRun (or by
  /// ProvenanceStore::Serialize). The blob must stem from a run of this
  /// service's specification; it is immediately queryable.
  Result<RunId> ImportRun(const std::vector<uint8_t>& blob);

  /// Serializes the whole service — specification, scheme identity, and
  /// every registered run with its labels, catalog and stats — to one
  /// versioned, checksummed snapshot file (src/io/snapshot.h; format in
  /// docs/PERSISTENCE.md). Composed shard by shard under each shard's read
  /// lock — no stop-the-world pass, so concurrent queries keep answering
  /// throughout; the view is per-shard consistent. Fails with
  /// InvalidArgument for services over caller-constructed schemes that are
  /// not one of the bundled SpecSchemeKinds.
  Status SaveSnapshot(const std::string& path) const;

  /// Restores a service saved by SaveSnapshot: same RunIds (including the
  /// id counter, so the next AddRun gets the same handle it would have on
  /// the saving service) and bit-identical query answers, with the skeleton
  /// scheme rebuilt deterministically from the restored specification.
  /// Runtime knobs (thread pool size, fail-fast) are not part of the
  /// snapshot; pass them here. Malformed input — truncated file, bad magic,
  /// unsupported version, corrupted section — fails with a descriptive
  /// ParseError.
  static Result<ProvenanceService> LoadSnapshot(
      const std::string& path, Options options = {},
      SnapshotLoadOptions load_options = {});

  /// True when this service was restored through the mmap path and its
  /// runs view the mapped snapshot (released when the last viewing run is
  /// destroyed). False for copying loads and non-snapshot services.
  bool loaded_via_mmap() const { return loaded_via_mmap_; }

  /// SaveSnapshot pinned to an older container format version, for compat
  /// tests and the before/after benchmark columns. Supported: 1 (per-run
  /// blob section) and kSnapshotFormatVersion (columnar, what SaveSnapshot
  /// writes).
  Status SaveSnapshotAtVersion(const std::string& path,
                               uint32_t format_version) const;

  /// In-memory SaveSnapshot: the same container bytes WriteFile would
  /// persist, for shipping over the wire (kSnapshotFetch) instead of to
  /// disk. Does not count as a snapshot_saves tick.
  Result<std::vector<uint8_t>> SnapshotBytes() const;

  /// In-memory LoadSnapshot over bytes produced by SnapshotBytes (or read
  /// from a snapshot file).
  static Result<ProvenanceService> LoadSnapshotBytes(
      std::vector<uint8_t> bytes, Options options = {});

  // ---------------------------------------------------------- replication --

  /// Attaches a durable op-log (src/replication/oplog.h): from now on every
  /// successful mutation — AddRun/bulk/session ingestion, ImportRun,
  /// RemoveRun — is appended to the log *before* the call returns, so an
  /// acked op is always replayable (append-before-ack). The log must
  /// outlive the service; pass nullptr to detach. An append failure after
  /// the registry already published surfaces as Internal: the caller must
  /// treat the service as ahead of its log.
  void AttachOpLog(OpLog* oplog);

  /// Last LSN appended to the attached op-log; 0 when none is attached.
  uint64_t replication_lsn() const;

  /// Replica-side apply of a shipped AddRun/ImportRun op (and the restore
  /// path of log recovery): registers the record under the *primary's* run
  /// id, validating the blob against this service's specification exactly
  /// like ImportRun. Idempotent — an id that is already registered is
  /// skipped silently, which is what makes snapshot+stream bootstrap safe
  /// when the two overlap. Never appended to an attached op-log and not
  /// counted in the ingestion counters (the stats describe locally served
  /// ops, not replicated ones).
  Status RestoreRun(uint64_t id, const RunStats& stats,
                    std::span<const uint8_t> blob);

  // ------------------------------------------------------------- registry --

  bool Contains(RunId id) const;
  size_t num_runs() const;
  Result<RunStats> Stats(RunId id) const;
  /// Point-in-time copy of the service-wide cumulative counters.
  ServiceStats service_stats() const;
  /// Handles of all registered runs, in registration order.
  std::vector<RunId> ListRuns() const;

  /// The *head-epoch* specification and scheme — what new runs are labeled
  /// against. Old epochs stay reachable through FindEpoch / run records.
  const Specification& spec() const { return *head_epoch_entry().spec; }
  const SpecLabelingScheme& scheme() const {
    return *head_epoch_entry().scheme;
  }
  /// The epoch-1 specification the service was created with — the spec an
  /// op-log header or snapshot Spec section records; deltas are replayed
  /// on top of it (docs/UPDATES.md).
  const Specification& base_spec() const { return *epochs_->front().spec; }
  const Options& options() const { return options_; }

  /// The service-level metrics registry (docs/OBSERVABILITY.md): the
  /// labeling-time histogram and per-shard result-cache tallies. The net
  /// server renders it into its kMetrics exposition. Like the ServiceStats
  /// counters, it describes this service object's lifetime — a snapshot
  /// load swaps in a fresh registry.
  const MetricsRegistry& metrics() const { return *metrics_; }

  /// Which registry shard owns `id` — the shard label the slow-query log
  /// records next to a run id.
  size_t shard_of(RunId id) const;

 private:
  friend class RunSession;

  /// ServiceStats internals. The fields are atomic because they are
  /// bumped from concurrent shard read-lock holders (query paths) as well
  /// as shard writer-lock registry mutations — and, for snapshot_saves,
  /// after the save's lock scope has ended. There is no lock that all of
  /// them share anymore.
  struct Counters {
    std::atomic<uint64_t> reaches_queries{0};
    std::atomic<uint64_t> depends_on_queries{0};
    std::atomic<uint64_t> module_data_queries{0};
    std::atomic<uint64_t> data_module_queries{0};
    std::atomic<uint64_t> batch_calls{0};
    std::atomic<uint64_t> runs_ingested{0};
    std::atomic<uint64_t> runs_imported{0};
    std::atomic<uint64_t> runs_removed{0};
    std::atomic<uint64_t> bulk_batches{0};
    std::atomic<uint64_t> snapshot_saves{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
  };

  ProvenanceService(std::unique_ptr<const Specification> spec,
                    std::unique_ptr<SpecLabelingScheme> scheme,
                    Options options);

  /// The head of the epoch chain (acquire load; published with release by
  /// ApplySpecDelta, so a reader always sees a fully constructed entry).
  const SpecEpoch& head_epoch_entry() const {
    return *head_->load(std::memory_order_acquire);
  }

  /// Shared delta application behind ApplySpecDelta (logging, guarded) and
  /// ApplySpecDeltaReplicated / snapshot replay (non-logging, unguarded).
  Result<uint64_t> ApplyDeltaLocked(const SpecDelta& delta,
                                    bool check_dependents, bool append_log);

  /// Labels one run outside any lock: plan recovery (unless supplied, in
  /// which case `origin` is recovered too and the argument is ignored),
  /// run labeling, catalog validation and store capture. `at` is the epoch
  /// the run is labeled (and forever frozen) under.
  Result<RunRecord> BuildRecord(const Run& run, const ExecutionPlan* plan,
                                std::vector<VertexId> origin,
                                const DataCatalog* catalog,
                                const SpecEpoch* at) const;

  /// Packs a labeling (+ optional, already validated catalog) into the
  /// record format the registry stores. Lock-free; shared by every
  /// ingestion path so the stats fields cannot diverge between them.
  RunRecord CaptureRecord(const RunLabeling& labeling,
                          const DataCatalog* catalog, bool imported,
                          const SpecEpoch* at) const;

  /// Publishes a record under a fresh id (takes one shard's writer lock),
  /// then appends the op to the attached op-log (if any) before returning
  /// — the append-before-ack half of the replication contract.
  /// `invalidate` bumps the target shard's cache generation (ImportRun).
  Result<RunId> Publish(RunRecord record, bool invalidate = false);

  /// Captures a labeling (+ optional catalog) and publishes it under a new
  /// id. Validates the catalog against the labeling first.
  Result<RunId> Register(const RunLabeling& labeling,
                         const DataCatalog* catalog, bool imported,
                         const SpecEpoch* at);

  /// Shared driver of the two bulk paths: `build(i)` produces record i on a
  /// pool worker; successes are published in input order.
  std::vector<Result<RunId>> BulkIngest(
      size_t count, const std::function<Result<RunRecord>(size_t)>& build);

  /// Returns the bulk-ingestion pool, starting it on first use.
  ThreadPool& Pool();

  /// Shared snapshot composition behind SaveSnapshot / SnapshotBytes.
  Result<SnapshotWriter> BuildSnapshotWriter(uint32_t format_version) const;
  /// Shared restore behind LoadSnapshot / LoadSnapshotBytes.
  static Result<ProvenanceService> LoadFromSnapshotReader(
      SnapshotReader reader, Options options);
  /// Restores the v2 columnar run sections into `service` (snapshot.cc).
  static Status LoadColumnarRuns(const SnapshotReader& reader,
                                 std::string_view scheme_name, VertexId n_g,
                                 ProvenanceService* service);

  // The query methods memoize through the shard's QueryCache via one
  // shared helper (Memoized, provenance_service.cc): probe under the read
  // lock the ReadHandle holds, recompute on a miss, stamp with the
  // handle's generation.

  // The append-only spec-epoch chain. Behind a unique_ptr so entry (and
  // container) addresses survive service moves: schemes hold a pointer to
  // their epoch's spec.graph(), sessions and run records to both. Reads go
  // through head_ (atomic) or a record's cached pointers — never through
  // the deque itself, whose push_back is guarded by epoch_mu_.
  std::unique_ptr<std::deque<SpecEpoch>> epochs_;
  std::unique_ptr<std::atomic<const SpecEpoch*>> head_;
  std::unique_ptr<std::mutex> epoch_mu_;  // serializes ApplySpecDelta
  /// The bundled scheme kind deltas rebuild with; set iff the scheme's
  /// name round-trips through ParseSpecSchemeKind. A service over a
  /// caller-constructed scheme cannot apply deltas (nor snapshot).
  bool bundled_scheme_ = false;
  SpecSchemeKind scheme_kind_ = SpecSchemeKind::kTcm;
  Options options_;

  /// Registers the labeling histogram and per-shard cache gauges on
  /// metrics_ (constructor only; the gauges capture registry_'s address,
  /// which unique_ptr keeps stable across service moves).
  void RegisterServiceMetrics();

  std::unique_ptr<Counters> counters_;  // see Counters for the contract
  // The sharded, lock-striped run storage (internally synchronized);
  // behind a unique_ptr so the service stays movable while shard mutexes
  // and handed-out ReadHandles keep stable addresses.
  std::unique_ptr<RunRegistry> registry_;

  // Behind a unique_ptr for movability; the histogram pointers point into
  // metrics_ (stable addresses) and record lock-free.
  std::unique_ptr<MetricsRegistry> metrics_;
  LatencyHistogram* labeling_hist_ = nullptr;
  LatencyHistogram* relabel_hist_ = nullptr;  ///< skl_spec_relabel_us

  std::unique_ptr<std::mutex> pool_mu_;  // guards lazy pool_ creation
  std::unique_ptr<ThreadPool> pool_;     // created on first bulk call

  OpLog* oplog_ = nullptr;  ///< borrowed; see AttachOpLog

  bool loaded_via_mmap_ = false;  ///< see loaded_via_mmap()
};

/// Live labeling of one in-flight run, created by
/// ProvenanceService::OpenSession. Wraps OnlineLabeler event feeding: the
/// event stream must be well-parenthesized (depth-first), and mid-run
/// queries walk the partial plan in O(depth). Seal() freezes the run into
/// constant-time labels and registers it with the originating service.
class RunSession {
 public:
  RunSession(RunSession&&) = default;
  RunSession& operator=(RunSession&&) = default;

  /// Starts an execution of the given fork/loop (a child, in T_G, of the
  /// subgraph whose copy is currently open).
  Status BeginExecution(HierNodeId subgraph) {
    return labeler_.BeginExecution(subgraph);
  }
  /// Starts the next copy of the currently open execution.
  Status BeginCopy() { return labeler_.BeginCopy(); }
  Status EndCopy() { return labeler_.EndCopy(); }
  Status EndExecution() { return labeler_.EndExecution(); }

  /// Records one module execution inside the currently open copy. Returns
  /// the new run vertex id, usable in queries immediately.
  Result<VertexId> ExecuteModule(std::string_view module_name) {
    return labeler_.ExecuteModule(module_name);
  }

  /// Mid-run reachability (reflexive): O(plan depth).
  bool Reaches(VertexId v, VertexId w) const {
    return labeler_.Reaches(v, w);
  }

  /// Number of module executions so far.
  VertexId num_vertices() const { return labeler_.num_vertices(); }

  /// Completes the run and registers it with the service; the session is
  /// consumed. Every execution must be closed (same contract as
  /// OnlineLabeler::Finish).
  Result<RunId> Seal(const DataCatalog* catalog = nullptr) &&;

 private:
  friend class ProvenanceService;
  RunSession(ProvenanceService* service,
             const ProvenanceService::SpecEpoch* epoch)
      : service_(service),
        epoch_(epoch),
        labeler_(epoch->spec.get(), epoch->scheme.get()) {}

  ProvenanceService* service_;
  /// The epoch the session labels against, captured at OpenSession time;
  /// Seal registers the run frozen to it even if deltas landed meanwhile.
  const ProvenanceService::SpecEpoch* epoch_;
  OnlineLabeler labeler_;
};

}  // namespace skl

#endif  // SKL_CORE_PROVENANCE_SERVICE_H_
