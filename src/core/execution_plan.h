// Execution plan T_R (paper Section 4.1, Figure 7): a semi-ordered tree
// describing how the fork and loop subgraphs of the specification were
// replicated to produce a run. The root (G+) stands for the whole run; F+/L+
// nodes stand for single fork/loop copies; F-/L- nodes stand for all copies
// produced by one fork/loop execution (children of L- nodes are ordered by
// serial position, all other children are unordered).
//
// The plan also carries the context function C : V(R) -> V(T_R)
// (Definition 9): the deepest + node dominating each run vertex.
#ifndef SKL_CORE_EXECUTION_PLAN_H_
#define SKL_CORE_EXECUTION_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/digraph.h"
#include "src/workflow/hierarchy.h"

namespace skl {

using PlanNodeId = int32_t;
inline constexpr PlanNodeId kPlanRoot = 0;
inline constexpr PlanNodeId kInvalidPlanNode = -1;

enum class PlanNodeType : uint8_t {
  kGPlus,   ///< root: the entire run
  kFMinus,  ///< all parallel copies of one fork execution
  kFPlus,   ///< a single fork copy
  kLMinus,  ///< all serial copies of one loop execution
  kLPlus,   ///< a single loop copy
};

/// True for G+/F+/L+ nodes.
bool IsPlusNode(PlanNodeType t);

const char* PlanNodeTypeName(PlanNodeType t);

struct PlanNode {
  PlanNodeType type = PlanNodeType::kGPlus;
  /// The T_G node this plan node instantiates (root for G+).
  HierNodeId hier = kHierRoot;
  PlanNodeId parent = kInvalidPlanNode;
  /// Ordered left-to-right for L- nodes; arbitrary otherwise.
  std::vector<PlanNodeId> children;
  /// Number of run vertices whose context is this node (only + nodes).
  uint32_t num_context_vertices = 0;
};

class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Creates a plan containing only the root G+ node, with `num_run_vertices`
  /// context slots (all initially unassigned).
  explicit ExecutionPlan(VertexId num_run_vertices);

  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const PlanNode& node(PlanNodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Adds a node; parent may be kInvalidPlanNode and fixed up later via
  /// SetParent.
  PlanNodeId AddNode(PlanNodeType type, HierNodeId hier,
                     PlanNodeId parent = kInvalidPlanNode);

  /// Links `child` under `parent` (appends to the parent's child list).
  void SetParent(PlanNodeId child, PlanNodeId parent);

  /// Context function. kInvalidPlanNode marks unassigned vertices.
  PlanNodeId ContextOf(VertexId v) const { return context_[v]; }
  const std::vector<PlanNodeId>& context() const { return context_; }

  /// Assigns vertex v the context x (must be a + node) and bumps the node's
  /// nonempty counter. No-op forbidden: v must be unassigned.
  void AssignContext(VertexId v, PlanNodeId x);

  /// Appends a context slot for a brand-new run vertex and assigns it to x
  /// (online construction). Returns the new vertex id.
  VertexId AppendVertex(PlanNodeId x);

  /// Number of run vertices covered by the context function.
  VertexId num_run_vertices() const {
    return static_cast<VertexId>(context_.size());
  }

  /// Number of + nodes with at least one context vertex (n_T^+ in the
  /// paper's label-length bound).
  uint32_t num_nonempty_plus() const { return num_nonempty_plus_; }
  uint32_t num_plus_nodes() const { return num_plus_nodes_; }
  uint32_t num_minus_nodes() const {
    return static_cast<uint32_t>(nodes_.size()) - num_plus_nodes_;
  }

  /// Structural sanity: parents/children consistent, every vertex assigned to
  /// a + node, L-/F- children are + nodes of the same hierarchy node, and the
  /// Lemma 4.2 bound |V(T_R)| <= 4 m_R holds (m_R from the caller).
  Status Validate(size_t num_run_edges) const;

  /// Multi-line dump for debugging and the quickstart example.
  std::string ToString(const Hierarchy* hierarchy = nullptr) const;

 private:
  std::vector<PlanNode> nodes_;
  std::vector<PlanNodeId> context_;
  uint32_t num_plus_nodes_ = 0;
  uint32_t num_nonempty_plus_ = 0;
};

}  // namespace skl

#endif  // SKL_CORE_EXECUTION_PLAN_H_
