#include "src/core/data_provenance.h"

#include <algorithm>

namespace skl {

DataItemId DataCatalog::AddItem(VertexId output) {
  outputs_.push_back(output);
  inputs_.emplace_back();
  return static_cast<DataItemId>(outputs_.size() - 1);
}

Status DataCatalog::AddFlow(DataItemId item, VertexId writer,
                            VertexId reader) {
  if (item >= outputs_.size()) {
    return Status::InvalidArgument("unknown data item");
  }
  if (outputs_[item] != writer) {
    return Status::InvalidArgument(
        "data item written by two different modules");
  }
  auto& readers = inputs_[item];
  if (std::find(readers.begin(), readers.end(), reader) == readers.end()) {
    readers.push_back(reader);
  }
  return Status::OK();
}

size_t DataCatalog::MaxInputs() const {
  size_t k = 0;
  for (const auto& readers : inputs_) k = std::max(k, readers.size());
  return k;
}

Result<DataProvenance> DataProvenance::Build(const RunLabeling* labeling,
                                             const DataCatalog& catalog) {
  if (labeling == nullptr) {
    return Status::InvalidArgument("null labeling");
  }
  DataProvenance dp;
  dp.labeling_ = labeling;
  dp.output_labels_.reserve(catalog.size());
  dp.input_labels_.reserve(catalog.size());
  for (DataItemId x = 0; x < catalog.size(); ++x) {
    VertexId out = catalog.OutputOf(x);
    if (out >= labeling->num_vertices()) {
      return Status::InvalidArgument("data item writer outside the run");
    }
    dp.output_labels_.push_back(labeling->label(out));
    std::vector<RunLabel> readers;
    readers.reserve(catalog.InputsOf(x).size());
    for (VertexId v : catalog.InputsOf(x)) {
      if (v >= labeling->num_vertices()) {
        return Status::InvalidArgument("data item reader outside the run");
      }
      readers.push_back(labeling->label(v));
    }
    dp.input_labels_.push_back(std::move(readers));
  }
  return dp;
}

bool DataProvenance::DependsOn(DataItemId x, DataItemId x_from) const {
  const RunLabel& out = output_labels_[x];
  for (const RunLabel& reader : input_labels_[x_from]) {
    if (RunLabeling::Decide(reader, out, labeling_->scheme())) return true;
  }
  return false;
}

bool DataProvenance::DataDependsOnModule(DataItemId x, VertexId v) const {
  return RunLabeling::Decide(labeling_->label(v), output_labels_[x],
                             labeling_->scheme());
}

bool DataProvenance::ModuleDependsOnData(VertexId v, DataItemId x) const {
  const RunLabel& target = labeling_->label(v);
  for (const RunLabel& reader : input_labels_[x]) {
    if (RunLabeling::Decide(reader, target, labeling_->scheme())) return true;
  }
  return false;
}

size_t DataProvenance::LabelBits(DataItemId x) const {
  return (input_labels_[x].size() + 1) * labeling_->label_bits();
}

}  // namespace skl
