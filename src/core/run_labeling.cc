#include "src/core/run_labeling.h"

#include "src/common/bit_codec.h"
#include "src/common/check.h"

namespace skl {

Result<RunLabeling> RunLabeling::FromPlan(const Specification& spec,
                                          const SpecLabelingScheme* scheme,
                                          const ExecutionPlan& plan,
                                          std::vector<VertexId> origin) {
  if (scheme == nullptr) {
    return Status::InvalidArgument("null skeleton scheme");
  }
  if (origin.size() != plan.num_run_vertices()) {
    return Status::InvalidArgument("origin/plan size mismatch");
  }
  RunLabeling rl;
  rl.scheme_ = scheme;
  ContextEncoding enc = GenerateThreeOrders(plan);
  rl.labels_.resize(plan.num_run_vertices());
  for (VertexId v = 0; v < plan.num_run_vertices(); ++v) {
    PlanNodeId x = plan.ContextOf(v);
    if (x == kInvalidPlanNode) {
      return Status::Internal("vertex without context");
    }
    if (enc.q1[x] == 0) {
      return Status::Internal("context is an empty + node");
    }
    rl.labels_[v] =
        RunLabel{enc.q1[x], enc.q2[x], enc.q3[x], origin[v]};
  }
  rl.num_nonempty_plus_ = enc.num_nonempty_plus;
  rl.context_bits_ =
      3 * static_cast<uint32_t>(BitsForCount(enc.num_nonempty_plus));
  rl.origin_bits_ =
      static_cast<uint32_t>(BitsForCount(spec.graph().num_vertices()));
  return rl;
}

bool RunLabeling::Decide(const RunLabel& a, const RunLabel& b,
                         const SpecLabelingScheme& scheme) {
  int64_t d2 = static_cast<int64_t>(a.q2) - static_cast<int64_t>(b.q2);
  int64_t d3 = static_cast<int64_t>(a.q3) - static_cast<int64_t>(b.q3);
  if (d2 * d3 < 0) {
    // LCA of the contexts is an F- node (unreachable either way) or an L-
    // node (reachable in serial order); a.q1 < b.q1 && a.q3 > b.q3 singles
    // out the L- case in the forward direction (Lemma 4.5).
    return a.q1 < b.q1 && a.q3 > b.q3;
  }
  return scheme.Reaches(a.origin, b.origin);
}

const char* RunRelationshipName(RunRelationship r) {
  switch (r) {
    case RunRelationship::kEqual:
      return "equal";
    case RunRelationship::kForward:
      return "forward";
    case RunRelationship::kBackward:
      return "backward";
    case RunRelationship::kUnrelated:
      return "unrelated";
  }
  return "?";
}

RunRelationship RunLabeling::Relate(VertexId v, VertexId w) const {
  if (v == w) return RunRelationship::kEqual;
  const RunLabel& a = labels_[v];
  const RunLabel& b = labels_[w];
  int64_t d2 = static_cast<int64_t>(a.q2) - static_cast<int64_t>(b.q2);
  int64_t d3 = static_cast<int64_t>(a.q3) - static_cast<int64_t>(b.q3);
  if (d2 * d3 < 0) {
    // L- ancestor: O1 and the reversed O3 disagree, direction from O1.
    // F- ancestor: O1 and O3 agree, so neither test below fires.
    if (a.q1 < b.q1 && a.q3 > b.q3) return RunRelationship::kForward;
    if (b.q1 < a.q1 && b.q3 > a.q3) return RunRelationship::kBackward;
    return RunRelationship::kUnrelated;
  }
  if (scheme_->Reaches(a.origin, b.origin)) return RunRelationship::kForward;
  if (scheme_->Reaches(b.origin, a.origin)) {
    return RunRelationship::kBackward;
  }
  return RunRelationship::kUnrelated;
}

bool RunLabeling::ReachesWithStats(VertexId v, VertexId w,
                                   bool* used_skeleton) const {
  const RunLabel& a = labels_[v];
  const RunLabel& b = labels_[w];
  int64_t d2 = static_cast<int64_t>(a.q2) - static_cast<int64_t>(b.q2);
  int64_t d3 = static_cast<int64_t>(a.q3) - static_cast<int64_t>(b.q3);
  if (d2 * d3 < 0) {
    *used_skeleton = false;
    return a.q1 < b.q1 && a.q3 > b.q3;
  }
  *used_skeleton = true;
  return scheme_->Reaches(a.origin, b.origin);
}

}  // namespace skl
