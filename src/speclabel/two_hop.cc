#include "src/speclabel/two_hop.h"

#include <algorithm>

#include "src/common/bit_codec.h"
#include "src/common/bitset.h"
#include "src/common/stopwatch.h"
#include "src/graph/algorithms.h"

namespace skl {

Status TwoHopScheme::Build(const Digraph& g) {
  if (!IsAcyclic(g)) {
    return Status::InvalidArgument("2-hop requires an acyclic graph");
  }
  Stopwatch sw;
  const VertexId n = g.num_vertices();
  num_vertices_ = n;
  out_hops_.assign(n, {});
  in_hops_.assign(n, {});
  if (n == 0) return Status::OK();

  // Forward closure rows (reachable-from) and backward rows (reaching).
  std::vector<DynamicBitset> fwd = TransitiveClosure(g);
  std::vector<DynamicBitset> bwd(n);
  for (VertexId v = 0; v < n; ++v) bwd[v] = DynamicBitset(n);
  for (VertexId u = 0; u < n; ++u) {
    for (size_t v = fwd[u].FindFirst(); v < n; v = fwd[u].FindNext(v)) {
      bwd[v].Set(u);
    }
  }

  // Uncovered strict pairs per source vertex (diagonal handled reflexively
  // at query time).
  std::vector<DynamicBitset> uncovered = fwd;
  size_t remaining = 0;
  for (VertexId u = 0; u < n; ++u) {
    uncovered[u].Clear(u);
    remaining += uncovered[u].Count();
  }

  // Greedy set cover: repeatedly pick the hop w whose R-(w) x R+(w)
  // rectangle covers the most uncovered pairs.
  std::vector<bool> in_added(n, false);
  while (remaining > 0) {
    VertexId best = kInvalidVertex;
    size_t best_gain = 0;
    for (VertexId w = 0; w < n; ++w) {
      size_t gain = 0;
      for (size_t x = bwd[w].FindFirst(); x < n; x = bwd[w].FindNext(x)) {
        DynamicBitset tmp = uncovered[x];
        tmp.IntersectWith(fwd[w]);
        gain += tmp.Count();
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = w;
      }
    }
    if (best == kInvalidVertex) {
      return Status::Internal("2-hop greedy stalled with uncovered pairs");
    }
    std::fill(in_added.begin(), in_added.end(), false);
    for (size_t x = bwd[best].FindFirst(); x < n;
         x = bwd[best].FindNext(x)) {
      DynamicBitset newly = uncovered[static_cast<VertexId>(x)];
      newly.IntersectWith(fwd[best]);
      size_t cnt = newly.Count();
      if (cnt == 0) continue;
      out_hops_[x].push_back(best);
      remaining -= cnt;
      for (size_t y = newly.FindFirst(); y < n; y = newly.FindNext(y)) {
        uncovered[x].Clear(y);
        if (!in_added[y]) {
          in_added[y] = true;
          in_hops_[y].push_back(best);
        }
      }
    }
  }
  for (auto& hops : out_hops_) std::sort(hops.begin(), hops.end());
  for (auto& hops : in_hops_) std::sort(hops.begin(), hops.end());
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

bool TwoHopScheme::Reaches(VertexId u, VertexId v) const {
  if (u == v) return true;
  const auto& a = out_hops_[u];
  const auto& b = in_hops_[v];
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

size_t TwoHopScheme::TotalEntries() const {
  size_t total = 0;
  for (const auto& hops : out_hops_) total += hops.size();
  for (const auto& hops : in_hops_) total += hops.size();
  return total;
}

size_t TwoHopScheme::TotalLabelBits() const {
  return TotalEntries() * BitsForCount(num_vertices_);
}

size_t TwoHopScheme::MaxLabelBits() const {
  size_t max_entries = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    max_entries =
        std::max(max_entries, out_hops_[v].size() + in_hops_[v].size());
  }
  return max_entries * BitsForCount(num_vertices_);
}

}  // namespace skl
