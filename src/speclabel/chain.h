// Chain-decomposition scheme (Jagadish 1990): partition the DAG into chains
// (vertex-disjoint paths) with a greedy peeling pass, then store for every
// vertex u and every chain c the minimum chain position reachable from u.
// Query: u reaches v iff minpos(u, chain(v)) <= pos(v). Label size is
// proportional to the number of chains.
#ifndef SKL_SPECLABEL_CHAIN_H_
#define SKL_SPECLABEL_CHAIN_H_

#include <cstdint>
#include <vector>

#include "src/speclabel/scheme.h"

namespace skl {

class ChainScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "CHAIN"; }
  Status Build(const Digraph& g) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override;
  size_t MaxLabelBits() const override;

  size_t num_chains() const { return num_chains_; }

 private:
  static constexpr uint32_t kUnreachable = UINT32_MAX;

  size_t num_chains_ = 0;
  std::vector<uint32_t> chain_of_;
  std::vector<uint32_t> pos_in_chain_;
  /// minpos_[u * num_chains_ + c]
  std::vector<uint32_t> minpos_;
};

}  // namespace skl

#endif  // SKL_SPECLABEL_CHAIN_H_
