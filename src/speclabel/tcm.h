// TCM (paper Section 7): precomputes the reflexive transitive-closure matrix
// of the graph and assigns row i as the label of vertex i. Constant query
// time; n bits per label.
#ifndef SKL_SPECLABEL_TCM_H_
#define SKL_SPECLABEL_TCM_H_

#include <span>
#include <vector>

#include "src/common/bitset.h"
#include "src/speclabel/scheme.h"

namespace skl {

class TcmScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "TCM"; }
  Status Build(const Digraph& g) override;
  /// The closure matrix is canonical, so an incremental build can copy the
  /// rows of vertices outside the dirty region verbatim (remapping columns
  /// through `vertex_remap`) and recompute only the dirty rows by BFS —
  /// bit-identical to a full rebuild.
  Status BuildIncremental(const Digraph& new_graph,
                          const SpecLabelingScheme& previous,
                          std::span<const VertexId> vertex_remap,
                          std::span<const VertexId> dirty) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override;
  size_t MaxLabelBits() const override;

 private:
  std::vector<DynamicBitset> closure_;
};

}  // namespace skl

#endif  // SKL_SPECLABEL_TCM_H_
