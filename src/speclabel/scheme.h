// Reachability labeling schemes for the specification graph (the "skeleton"
// of Section 7). Any scheme exposing this interface can back the SKL run
// labeling; the paper evaluates TCM (transitive closure matrix) and BFS, and
// we additionally provide DFS, an interval scheme for trees, a tree-cover
// scheme and a chain-decomposition scheme for the robustness ablation.
//
// Reachability is reflexive throughout the library: Reaches(u, u) == true.
#ifndef SKL_SPECLABEL_SCHEME_H_
#define SKL_SPECLABEL_SCHEME_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/graph/digraph.h"

namespace skl {

/// Identifiers for the bundled schemes.
enum class SpecSchemeKind {
  kTcm,        ///< precomputed transitive-closure matrix; O(1) query
  kBfs,        ///< no index; BFS per query
  kDfs,        ///< no index; DFS per query
  kInterval,   ///< Santoro-Khatib intervals; trees only
  kTreeCover,  ///< Agrawal et al. tree cover (spanning tree + intervals)
  kChain,      ///< Jagadish chain decomposition
  kTwoHop,     ///< Cohen et al. 2-hop cover (greedy set cover)
};

const char* SpecSchemeKindName(SpecSchemeKind kind);

/// Inverse of SpecSchemeKindName, for CLI/config parsing. Accepts the
/// canonical names ("TCM", "TREECOVER", "2HOP", ...) and the CLI spellings
/// ("tcm", "tree-cover", "two-hop", ...), case-insensitively. Fails with
/// InvalidArgument listing the accepted names.
Result<SpecSchemeKind> ParseSpecSchemeKind(std::string_view name);

/// A built reachability index over one DAG.
class SpecLabelingScheme {
 public:
  virtual ~SpecLabelingScheme() = default;

  /// Scheme name for reports ("TCM", "BFS", ...).
  virtual std::string_view name() const = 0;

  /// Builds labels for `g`. Must be called exactly once before queries.
  virtual Status Build(const Digraph& g) = 0;

  /// Builds labels for `new_graph` given the built index of `previous`
  /// (the same scheme kind over the pre-delta graph), a vertex remap
  /// (`vertex_remap[old] == new id`, or kInvalidVertex if removed) and the
  /// set of `dirty` new-graph vertices whose reachable sets may have
  /// changed (docs/UPDATES.md). Implementations must produce a result
  /// bit-identical to Build(new_graph); the default does exactly that.
  /// Schemes with a canonical index (TCM) override this to reuse the clean
  /// region of `previous` and recompute only the dirty rows.
  virtual Status BuildIncremental(const Digraph& new_graph,
                                  const SpecLabelingScheme& previous,
                                  std::span<const VertexId> vertex_remap,
                                  std::span<const VertexId> dirty) {
    (void)previous;
    (void)vertex_remap;
    (void)dirty;
    return Build(new_graph);
  }

  /// Reflexive reachability between spec vertices.
  virtual bool Reaches(VertexId u, VertexId v) const = 0;

  /// Total index size in bits across all vertices (0 for search-based
  /// schemes, which keep only the graph itself).
  virtual size_t TotalLabelBits() const = 0;

  /// Largest single-vertex label in bits.
  virtual size_t MaxLabelBits() const = 0;

  /// Wall-clock seconds spent in Build (0 until built).
  double BuildSeconds() const { return build_seconds_; }

 protected:
  double build_seconds_ = 0;
};

/// Instantiates a scheme by kind.
std::unique_ptr<SpecLabelingScheme> CreateSpecScheme(SpecSchemeKind kind);

}  // namespace skl

#endif  // SKL_SPECLABEL_SCHEME_H_
