#include "src/speclabel/chain.h"

#include <algorithm>

#include "src/common/bit_codec.h"
#include "src/common/stopwatch.h"
#include "src/graph/algorithms.h"

namespace skl {

Status ChainScheme::Build(const Digraph& g) {
  Stopwatch sw;
  const VertexId n = g.num_vertices();
  auto topo_result = TopologicalSort(g);
  if (!topo_result.ok()) return topo_result.status();
  const auto& topo = topo_result.value();

  // Greedy chain peeling: walk from every not-yet-covered vertex in
  // topological order, always extending to an uncovered successor. This is
  // not a minimum path cover (that needs bipartite matching) but is linear
  // and typically within a small factor for workflow specs.
  chain_of_.assign(n, kUnreachable);
  pos_in_chain_.assign(n, 0);
  num_chains_ = 0;
  for (VertexId v : topo) {
    if (chain_of_[v] != kUnreachable) continue;
    uint32_t chain = static_cast<uint32_t>(num_chains_++);
    uint32_t pos = 0;
    VertexId cur = v;
    for (;;) {
      chain_of_[cur] = chain;
      pos_in_chain_[cur] = pos++;
      VertexId next = kInvalidVertex;
      for (VertexId w : g.OutNeighbors(cur)) {
        if (chain_of_[w] == kUnreachable) {
          next = w;
          break;
        }
      }
      if (next == kInvalidVertex) break;
      cur = next;
    }
  }

  // Reverse-topological DP of minimal reachable chain positions.
  minpos_.assign(static_cast<size_t>(n) * num_chains_, kUnreachable);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VertexId u = *it;
    uint32_t* row = &minpos_[static_cast<size_t>(u) * num_chains_];
    for (VertexId w : g.OutNeighbors(u)) {
      const uint32_t* wrow = &minpos_[static_cast<size_t>(w) * num_chains_];
      for (size_t c = 0; c < num_chains_; ++c) {
        row[c] = std::min(row[c], wrow[c]);
      }
    }
    row[chain_of_[u]] = std::min(row[chain_of_[u]], pos_in_chain_[u]);
  }
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

bool ChainScheme::Reaches(VertexId u, VertexId v) const {
  return minpos_[static_cast<size_t>(u) * num_chains_ + chain_of_[v]] <=
         pos_in_chain_[v];
}

size_t ChainScheme::TotalLabelBits() const {
  return chain_of_.size() * MaxLabelBits();
}

size_t ChainScheme::MaxLabelBits() const {
  uint32_t max_pos = 0;
  for (uint32_t p : pos_in_chain_) max_pos = std::max(max_pos, p);
  // One (position+1 or "unreachable") slot per chain.
  return num_chains_ * static_cast<size_t>(BitsForCount(max_pos + 2));
}

}  // namespace skl
