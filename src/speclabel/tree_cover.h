// Tree-cover scheme (Agrawal, Borgida, Jagadish 1989): interval-label a
// spanning tree by postorder, then propagate interval lists along non-tree
// edges in reverse topological order, merging overlapping/adjacent intervals.
// Query: u reaches v iff v's postorder number falls in one of u's intervals.
#ifndef SKL_SPECLABEL_TREE_COVER_H_
#define SKL_SPECLABEL_TREE_COVER_H_

#include <cstdint>
#include <vector>

#include "src/speclabel/scheme.h"

namespace skl {

class TreeCoverScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "TREECOVER"; }
  /// Requires an acyclic graph whose vertices are all reachable from a single
  /// source (true for workflow specifications).
  Status Build(const Digraph& g) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override;
  size_t MaxLabelBits() const override;

  /// Number of intervals stored for a vertex (exposed for tests/benches).
  size_t NumIntervals(VertexId v) const { return intervals_[v].size(); }

 private:
  struct Interval {
    uint32_t lo;
    uint32_t hi;
  };

  std::vector<uint32_t> post_;                  ///< postorder number
  std::vector<std::vector<Interval>> intervals_;
};

}  // namespace skl

#endif  // SKL_SPECLABEL_TREE_COVER_H_
