// BFS/DFS "schemes" (paper Section 7): no index is built; every query runs a
// graph search over the stored graph. Label length and construction time are
// treated as zero, query time is O(m + n).
#ifndef SKL_SPECLABEL_TRAVERSAL_H_
#define SKL_SPECLABEL_TRAVERSAL_H_

#include "src/graph/digraph.h"
#include "src/speclabel/scheme.h"

namespace skl {

class BfsScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "BFS"; }
  Status Build(const Digraph& g) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override { return 0; }
  size_t MaxLabelBits() const override { return 0; }

 private:
  Digraph graph_;
  // Scratch space reused across queries to avoid per-query allocation.
  mutable std::vector<uint32_t> stamp_;
  mutable std::vector<VertexId> frontier_;
  mutable uint32_t epoch_ = 0;
};

class DfsScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "DFS"; }
  Status Build(const Digraph& g) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override { return 0; }
  size_t MaxLabelBits() const override { return 0; }

 private:
  Digraph graph_;
  mutable std::vector<uint32_t> stamp_;
  mutable std::vector<VertexId> stack_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace skl

#endif  // SKL_SPECLABEL_TRAVERSAL_H_
