// Santoro-Khatib interval scheme [15]: for rooted trees, label every vertex
// with [pre, max_pre] over a preorder numbering; u reaches v iff
// pre(u) <= pre(v) <= max_pre(u). Only valid on out-trees (every vertex has
// at most one predecessor); used standalone on tree-shaped inputs and as the
// building block of the tree-cover scheme.
#ifndef SKL_SPECLABEL_INTERVAL_H_
#define SKL_SPECLABEL_INTERVAL_H_

#include <vector>

#include "src/speclabel/scheme.h"

namespace skl {

class IntervalScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "INTERVAL"; }
  /// Fails with InvalidArgument unless g is a single rooted out-tree.
  Status Build(const Digraph& g) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override;
  size_t MaxLabelBits() const override;

  /// The [pre, max_pre] interval of a vertex (exposed for tests).
  std::pair<uint32_t, uint32_t> IntervalOf(VertexId v) const {
    return {pre_[v], max_pre_[v]};
  }

 private:
  std::vector<uint32_t> pre_;
  std::vector<uint32_t> max_pre_;
};

}  // namespace skl

#endif  // SKL_SPECLABEL_INTERVAL_H_
