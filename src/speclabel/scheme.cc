#include "src/speclabel/scheme.h"

#include "src/common/check.h"
#include "src/speclabel/chain.h"
#include "src/speclabel/interval.h"
#include "src/speclabel/tcm.h"
#include "src/speclabel/traversal.h"
#include "src/speclabel/tree_cover.h"
#include "src/speclabel/two_hop.h"

namespace skl {

const char* SpecSchemeKindName(SpecSchemeKind kind) {
  switch (kind) {
    case SpecSchemeKind::kTcm:
      return "TCM";
    case SpecSchemeKind::kBfs:
      return "BFS";
    case SpecSchemeKind::kDfs:
      return "DFS";
    case SpecSchemeKind::kInterval:
      return "INTERVAL";
    case SpecSchemeKind::kTreeCover:
      return "TREECOVER";
    case SpecSchemeKind::kChain:
      return "CHAIN";
    case SpecSchemeKind::kTwoHop:
      return "2HOP";
  }
  return "?";
}

std::unique_ptr<SpecLabelingScheme> CreateSpecScheme(SpecSchemeKind kind) {
  switch (kind) {
    case SpecSchemeKind::kTcm:
      return std::make_unique<TcmScheme>();
    case SpecSchemeKind::kBfs:
      return std::make_unique<BfsScheme>();
    case SpecSchemeKind::kDfs:
      return std::make_unique<DfsScheme>();
    case SpecSchemeKind::kInterval:
      return std::make_unique<IntervalScheme>();
    case SpecSchemeKind::kTreeCover:
      return std::make_unique<TreeCoverScheme>();
    case SpecSchemeKind::kChain:
      return std::make_unique<ChainScheme>();
    case SpecSchemeKind::kTwoHop:
      return std::make_unique<TwoHopScheme>();
  }
  SKL_CHECK_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace skl
