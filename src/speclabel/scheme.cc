#include "src/speclabel/scheme.h"

#include <cctype>

#include "src/common/check.h"
#include "src/speclabel/chain.h"
#include "src/speclabel/interval.h"
#include "src/speclabel/tcm.h"
#include "src/speclabel/traversal.h"
#include "src/speclabel/tree_cover.h"
#include "src/speclabel/two_hop.h"

namespace skl {

const char* SpecSchemeKindName(SpecSchemeKind kind) {
  switch (kind) {
    case SpecSchemeKind::kTcm:
      return "TCM";
    case SpecSchemeKind::kBfs:
      return "BFS";
    case SpecSchemeKind::kDfs:
      return "DFS";
    case SpecSchemeKind::kInterval:
      return "INTERVAL";
    case SpecSchemeKind::kTreeCover:
      return "TREECOVER";
    case SpecSchemeKind::kChain:
      return "CHAIN";
    case SpecSchemeKind::kTwoHop:
      return "2HOP";
  }
  return "?";
}

Result<SpecSchemeKind> ParseSpecSchemeKind(std::string_view name) {
  std::string folded;
  folded.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;  // "tree-cover" == "treecover"
    folded.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (folded == "TCM") return SpecSchemeKind::kTcm;
  if (folded == "BFS") return SpecSchemeKind::kBfs;
  if (folded == "DFS") return SpecSchemeKind::kDfs;
  if (folded == "INTERVAL") return SpecSchemeKind::kInterval;
  if (folded == "TREECOVER") return SpecSchemeKind::kTreeCover;
  if (folded == "CHAIN") return SpecSchemeKind::kChain;
  if (folded == "2HOP" || folded == "TWOHOP") return SpecSchemeKind::kTwoHop;
  return Status::InvalidArgument(
      "unknown scheme '" + std::string(name) +
      "' (expected tcm|bfs|dfs|interval|tree-cover|chain|2hop)");
}

std::unique_ptr<SpecLabelingScheme> CreateSpecScheme(SpecSchemeKind kind) {
  switch (kind) {
    case SpecSchemeKind::kTcm:
      return std::make_unique<TcmScheme>();
    case SpecSchemeKind::kBfs:
      return std::make_unique<BfsScheme>();
    case SpecSchemeKind::kDfs:
      return std::make_unique<DfsScheme>();
    case SpecSchemeKind::kInterval:
      return std::make_unique<IntervalScheme>();
    case SpecSchemeKind::kTreeCover:
      return std::make_unique<TreeCoverScheme>();
    case SpecSchemeKind::kChain:
      return std::make_unique<ChainScheme>();
    case SpecSchemeKind::kTwoHop:
      return std::make_unique<TwoHopScheme>();
  }
  SKL_CHECK_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace skl
