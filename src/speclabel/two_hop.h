// 2-hop labeling (Cohen, Halperin, Kaplan, Zwick — SODA'02), the third
// labeling family in the paper's related work. Every vertex stores two hop
// sets, Lout(u) (hops reachable from u) and Lin(v) (hops reaching v), such
// that u reaches v iff Lout(u) and Lin(v) intersect. Hops are chosen by the
// classic greedy set-cover heuristic over the transitive closure, which is
// near-optimal but quadratic-ish — fine for specification-sized graphs,
// which is exactly where skeleton schemes run.
#ifndef SKL_SPECLABEL_TWO_HOP_H_
#define SKL_SPECLABEL_TWO_HOP_H_

#include <vector>

#include "src/speclabel/scheme.h"

namespace skl {

class TwoHopScheme : public SpecLabelingScheme {
 public:
  std::string_view name() const override { return "2HOP"; }
  Status Build(const Digraph& g) override;
  bool Reaches(VertexId u, VertexId v) const override;
  size_t TotalLabelBits() const override;
  size_t MaxLabelBits() const override;

  /// Total hop-set entries across all vertices (index size).
  size_t TotalEntries() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::vector<VertexId>> out_hops_;  ///< sorted
  std::vector<std::vector<VertexId>> in_hops_;   ///< sorted
};

}  // namespace skl

#endif  // SKL_SPECLABEL_TWO_HOP_H_
