#include "src/speclabel/interval.h"

#include "src/common/bit_codec.h"
#include "src/common/stopwatch.h"
#include "src/graph/algorithms.h"

namespace skl {

Status IntervalScheme::Build(const Digraph& g) {
  Stopwatch sw;
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (g.InDegree(v) > 1) {
      return Status::InvalidArgument(
          "interval scheme requires a tree (vertex has two parents)");
    }
    if (g.InDegree(v) == 0) {
      if (root != kInvalidVertex) {
        return Status::InvalidArgument(
            "interval scheme requires a single root");
      }
      root = v;
    }
  }
  if (root == kInvalidVertex) {
    return Status::InvalidArgument("graph has a cycle (no root)");
  }
  pre_.assign(n, 0);
  max_pre_.assign(n, 0);
  // Iterative preorder with post-processing hooks: when a vertex is finished,
  // fold its max_pre into the parent.
  std::vector<std::pair<VertexId, size_t>> stack;  // (vertex, child index)
  std::vector<VertexId> parent(n, kInvalidVertex);
  uint32_t counter = 0;
  stack.emplace_back(root, 0);
  pre_[root] = counter++;
  size_t visited = 1;
  while (!stack.empty()) {
    auto& [v, ci] = stack.back();
    auto kids = g.OutNeighbors(v);
    if (ci < kids.size()) {
      VertexId c = kids[ci++];
      parent[c] = v;
      pre_[c] = counter++;
      ++visited;
      stack.emplace_back(c, 0);
    } else {
      max_pre_[v] = std::max(max_pre_[v], pre_[v]);
      if (parent[v] != kInvalidVertex) {
        max_pre_[parent[v]] = std::max(max_pre_[parent[v]], max_pre_[v]);
      }
      stack.pop_back();
    }
  }
  if (visited != n) {
    return Status::InvalidArgument(
        "interval scheme requires a connected tree");
  }
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

bool IntervalScheme::Reaches(VertexId u, VertexId v) const {
  return pre_[u] <= pre_[v] && pre_[v] <= max_pre_[u];
}

size_t IntervalScheme::TotalLabelBits() const {
  return pre_.size() * MaxLabelBits();
}

size_t IntervalScheme::MaxLabelBits() const {
  return 2 * static_cast<size_t>(BitsForCount(pre_.size()));
}

}  // namespace skl
