#include "src/speclabel/tree_cover.h"

#include <algorithm>

#include "src/common/bit_codec.h"
#include "src/common/stopwatch.h"
#include "src/graph/algorithms.h"

namespace skl {

Status TreeCoverScheme::Build(const Digraph& g) {
  Stopwatch sw;
  const VertexId n = g.num_vertices();
  auto topo_result = TopologicalSort(g);
  if (!topo_result.ok()) return topo_result.status();
  const auto& topo = topo_result.value();

  auto sources = Sources(g);
  if (sources.size() != 1) {
    return Status::InvalidArgument("tree cover requires a single source");
  }
  // Spanning tree: first-in-topological-order parent. Processing vertices in
  // topological order guarantees the parent precedes the child.
  std::vector<VertexId> parent(n, kInvalidVertex);
  std::vector<std::vector<VertexId>> tree_children(n);
  {
    std::vector<uint32_t> topo_pos(n);
    for (uint32_t i = 0; i < n; ++i) topo_pos[topo[i]] = i;
    for (VertexId v = 0; v < n; ++v) {
      VertexId best = kInvalidVertex;
      for (VertexId u : g.InNeighbors(v)) {
        if (best == kInvalidVertex || topo_pos[u] < topo_pos[best]) best = u;
      }
      parent[v] = best;
      if (best != kInvalidVertex) tree_children[best].push_back(v);
    }
  }
  // Postorder numbering of the spanning tree (iterative).
  post_.assign(n, 0);
  std::vector<uint32_t> subtree_lo(n, 0);
  {
    uint32_t counter = 1;  // postorder numbers are 1-based
    std::vector<std::pair<VertexId, size_t>> stack{{sources[0], 0}};
    while (!stack.empty()) {
      auto [v, ci] = stack.back();
      if (ci < tree_children[v].size()) {
        ++stack.back().second;
        stack.emplace_back(tree_children[v][ci], 0);
      } else {
        post_[v] = counter++;
        subtree_lo[v] = post_[v];
        for (VertexId c : tree_children[v]) {
          subtree_lo[v] = std::min(subtree_lo[v], subtree_lo[c]);
        }
        stack.pop_back();
      }
    }
    if (counter != n + 1) {
      return Status::InvalidArgument(
          "tree cover requires all vertices reachable from the source");
    }
  }
  // Propagate interval lists in reverse topological order.
  intervals_.assign(n, {});
  std::vector<Interval> merged;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    VertexId u = *it;
    merged.clear();
    merged.push_back(Interval{subtree_lo[u], post_[u]});
    for (VertexId v : g.OutNeighbors(u)) {
      merged.insert(merged.end(), intervals_[v].begin(), intervals_[v].end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Interval& a, const Interval& b) {
                return a.lo < b.lo || (a.lo == b.lo && a.hi > b.hi);
              });
    auto& out = intervals_[u];
    out.clear();
    for (const Interval& iv : merged) {
      if (!out.empty() && iv.lo <= out.back().hi + 1) {
        out.back().hi = std::max(out.back().hi, iv.hi);
      } else {
        out.push_back(iv);
      }
    }
  }
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

bool TreeCoverScheme::Reaches(VertexId u, VertexId v) const {
  uint32_t target = post_[v];
  const auto& ivs = intervals_[u];
  // Intervals are sorted and disjoint: binary search the candidate.
  size_t lo = 0, hi = ivs.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (ivs[mid].hi < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < ivs.size() && ivs[lo].lo <= target;
}

size_t TreeCoverScheme::TotalLabelBits() const {
  size_t per_endpoint = BitsForCount(post_.size() + 1);
  size_t total = 0;
  for (const auto& ivs : intervals_) total += ivs.size() * 2 * per_endpoint;
  return total;
}

size_t TreeCoverScheme::MaxLabelBits() const {
  size_t per_endpoint = BitsForCount(post_.size() + 1);
  size_t max_ivs = 0;
  for (const auto& ivs : intervals_) max_ivs = std::max(max_ivs, ivs.size());
  return max_ivs * 2 * per_endpoint;
}

}  // namespace skl
