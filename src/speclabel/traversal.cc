#include "src/speclabel/traversal.h"

namespace skl {

Status BfsScheme::Build(const Digraph& g) {
  graph_ = g;
  stamp_.assign(g.num_vertices(), 0);
  epoch_ = 0;
  return Status::OK();
}

bool BfsScheme::Reaches(VertexId u, VertexId v) const {
  if (u == v) return true;
  ++epoch_;
  frontier_.clear();
  frontier_.push_back(u);
  stamp_[u] = epoch_;
  size_t head = 0;
  while (head < frontier_.size()) {
    VertexId x = frontier_[head++];
    for (VertexId y : graph_.OutNeighbors(x)) {
      if (y == v) return true;
      if (stamp_[y] != epoch_) {
        stamp_[y] = epoch_;
        frontier_.push_back(y);
      }
    }
  }
  return false;
}

Status DfsScheme::Build(const Digraph& g) {
  graph_ = g;
  stamp_.assign(g.num_vertices(), 0);
  epoch_ = 0;
  return Status::OK();
}

bool DfsScheme::Reaches(VertexId u, VertexId v) const {
  if (u == v) return true;
  ++epoch_;
  stack_.clear();
  stack_.push_back(u);
  stamp_[u] = epoch_;
  while (!stack_.empty()) {
    VertexId x = stack_.back();
    stack_.pop_back();
    for (VertexId y : graph_.OutNeighbors(x)) {
      if (y == v) return true;
      if (stamp_[y] != epoch_) {
        stamp_[y] = epoch_;
        stack_.push_back(y);
      }
    }
  }
  return false;
}

}  // namespace skl
