#include "src/speclabel/tcm.h"

#include "src/common/stopwatch.h"
#include "src/graph/algorithms.h"

namespace skl {

Status TcmScheme::Build(const Digraph& g) {
  if (!IsAcyclic(g)) {
    return Status::InvalidArgument("TCM requires an acyclic graph");
  }
  Stopwatch sw;
  closure_ = TransitiveClosure(g);
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

bool TcmScheme::Reaches(VertexId u, VertexId v) const {
  return closure_[u].Test(v);
}

size_t TcmScheme::TotalLabelBits() const {
  return closure_.size() * closure_.size();
}

size_t TcmScheme::MaxLabelBits() const { return closure_.size(); }

}  // namespace skl
