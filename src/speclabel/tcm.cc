#include "src/speclabel/tcm.h"

#include "src/common/stopwatch.h"
#include "src/graph/algorithms.h"

namespace skl {

Status TcmScheme::Build(const Digraph& g) {
  if (!IsAcyclic(g)) {
    return Status::InvalidArgument("TCM requires an acyclic graph");
  }
  Stopwatch sw;
  closure_ = TransitiveClosure(g);
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

Status TcmScheme::BuildIncremental(const Digraph& new_graph,
                                   const SpecLabelingScheme& previous,
                                   std::span<const VertexId> vertex_remap,
                                   std::span<const VertexId> dirty) {
  const auto* prev = dynamic_cast<const TcmScheme*>(&previous);
  if (prev == nullptr || prev->closure_.size() != vertex_remap.size()) {
    return Build(new_graph);
  }
  if (!IsAcyclic(new_graph)) {
    return Status::InvalidArgument("TCM requires an acyclic graph");
  }
  Stopwatch sw;
  const VertexId n = new_graph.num_vertices();
  std::vector<DynamicBitset> closure(n);
  std::vector<bool> is_dirty(n, false);
  for (VertexId v : dirty) is_dirty[v] = true;
  // Classify the remap so the two delta shapes that dominate in practice
  // copy rows word-level instead of bit-by-bit: AddModule appends (the
  // remap is the identity), RemoveModule drops one id and shifts the rest
  // down one (a single-erase). Anything else falls back to the general
  // per-bit remap.
  bool identity = true;
  bool single_erase = true;
  VertexId erased = kInvalidVertex;
  for (VertexId i = 0; i < vertex_remap.size(); ++i) {
    const VertexId m = vertex_remap[i];
    if (m == kInvalidVertex) {
      identity = false;
      if (erased != kInvalidVertex) single_erase = false;
      erased = i;
    } else if (erased == kInvalidVertex ? m != i : m != i - 1) {
      identity = false;
      single_erase = false;
    }
  }
  if (erased == kInvalidVertex) single_erase = false;
  // Clean rows: the reachable set is unchanged, so copy the old row with
  // its columns remapped into the new id space.
  for (VertexId old_u = 0; old_u < vertex_remap.size(); ++old_u) {
    const VertexId new_u = vertex_remap[old_u];
    if (new_u == kInvalidVertex || is_dirty[new_u]) continue;
    const DynamicBitset& old_row = prev->closure_[old_u];
    if (identity) {
      DynamicBitset row = old_row;
      row.GrowTo(n);
      closure[new_u] = std::move(row);
      continue;
    }
    if (single_erase) {
      DynamicBitset row = old_row;
      row.EraseBit(erased);
      closure[new_u] = std::move(row);
      continue;
    }
    DynamicBitset row(n);
    for (size_t w = old_row.FindFirst(); w < old_row.size();
         w = old_row.FindNext(w)) {
      const VertexId new_w = vertex_remap[w];
      if (new_w != kInvalidVertex) row.Set(new_w);
    }
    closure[new_u] = std::move(row);
  }
  // Dirty rows (and brand-new vertices): recompute from the new graph.
  for (VertexId u = 0; u < n; ++u) {
    if (closure[u].size() == 0) closure[u] = ReachableFrom(new_graph, u);
  }
  closure_ = std::move(closure);
  build_seconds_ = sw.ElapsedSeconds();
  return Status::OK();
}

bool TcmScheme::Reaches(VertexId u, VertexId v) const {
  return closure_[u].Test(v);
}

size_t TcmScheme::TotalLabelBits() const {
  return closure_.size() * closure_.size();
}

size_t TcmScheme::MaxLabelBits() const { return closure_.size(); }

}  // namespace skl
