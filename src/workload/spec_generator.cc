#include "src/workload/spec_generator.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/random.h"

namespace skl {

namespace {

/// Shape of the hierarchy being generated.
struct HierShape {
  struct Node {
    int32_t parent = -1;  // -1 = root
    int32_t depth = 1;    // subgraph depths are 2..D
    bool is_fork = false;
    std::vector<int32_t> children;
  };
  std::vector<Node> nodes;  // subgraphs only; "-1" stands for the root
  std::vector<int32_t> root_children;
};

HierShape BuildShape(const SpecGenOptions& opt, Rng* rng) {
  HierShape shape;
  shape.nodes.resize(opt.num_subgraphs);
  // A chain realizes the exact depth; the rest attach anywhere legal.
  uint32_t chain_len = opt.depth - 1;  // depth >= 2 here
  for (uint32_t i = 0; i < chain_len; ++i) {
    shape.nodes[i].parent = (i == 0) ? -1 : static_cast<int32_t>(i - 1);
    shape.nodes[i].depth = static_cast<int32_t>(i + 2);
  }
  for (uint32_t i = chain_len; i < opt.num_subgraphs; ++i) {
    // Candidate parents: the root or any node with depth < D.
    int32_t parent = -1;
    int32_t pdepth = 1;
    // Draw among {-1} union existing nodes until the depth constraint holds.
    for (;;) {
      int64_t pick = rng->NextInRange(-1, static_cast<int64_t>(i) - 1);
      if (pick < 0) {
        parent = -1;
        pdepth = 1;
        break;
      }
      if (shape.nodes[pick].depth <
          static_cast<int32_t>(opt.depth)) {
        parent = static_cast<int32_t>(pick);
        pdepth = shape.nodes[pick].depth;
        break;
      }
    }
    shape.nodes[i].parent = parent;
    shape.nodes[i].depth = pdepth + 1;
  }
  for (uint32_t i = 0; i < opt.num_subgraphs; ++i) {
    shape.nodes[i].is_fork = rng->NextBool(opt.fork_fraction);
    if (shape.nodes[i].parent < 0) {
      shape.root_children.push_back(static_cast<int32_t>(i));
    } else {
      shape.nodes[shape.nodes[i].parent].children.push_back(
          static_cast<int32_t>(i));
    }
  }
  return shape;
}

/// Builder state while laying out fragments.
class SpecLayout {
 public:
  SpecLayout(const SpecGenOptions& opt, const HierShape& shape, Rng* rng)
      : opt_(opt), shape_(shape), rng_(rng) {}

  Result<Specification> Build() {
    // Minimum own-chain middles: leaf forks need one internal own vertex.
    size_t num_frags = shape_.nodes.size() + 1;  // +1 for the root fragment
    middles_.assign(num_frags, 0);
    for (size_t i = 0; i < shape_.nodes.size(); ++i) {
      if (shape_.nodes[i].is_fork && shape_.nodes[i].children.empty()) {
        middles_[i + 1] = 1;
      }
    }
    size_t min_vertices = 0;
    for (size_t f = 0; f < num_frags; ++f) min_vertices += 2 + middles_[f];
    if (opt_.num_vertices < min_vertices) {
      return Status::InvalidArgument(
          "num_vertices too small for the requested subgraph structure "
          "(need at least " + std::to_string(min_vertices) + ")");
    }
    // Spread the slack: two thirds to the root backbone, the rest randomly.
    size_t slack = opt_.num_vertices - min_vertices;
    size_t root_share = slack * 2 / 3;
    middles_[0] += root_share;
    for (size_t i = 0; i < slack - root_share; ++i) {
      ++middles_[rng_->NextBelow(num_frags)];
    }

    // Lay out fragments bottom-up (children before parents), then the root.
    frag_sources_.assign(num_frags, kInvalidVertex);
    frag_sinks_.assign(num_frags, kInvalidVertex);
    frag_vertices_.assign(num_frags, {});
    frag_chain_.assign(num_frags, {});
    std::vector<int32_t> order = TopoOrderChildrenFirst();
    for (int32_t node : order) LayoutFragment(node + 1);
    LayoutFragment(0);

    // Edge budget: remaining edges become forward skip edges.
    if (opt_.num_edges < edges_.size()) {
      return Status::InvalidArgument(
          "num_edges below the backbone edge count (" +
          std::to_string(edges_.size()) + ")");
    }
    SKL_RETURN_NOT_OK(AddSkipEdges(opt_.num_edges - edges_.size()));

    // Assemble and validate.
    SpecificationBuilder builder;
    for (uint32_t v = 0; v < opt_.num_vertices; ++v) {
      builder.AddModule(opt_.name_prefix + std::to_string(v));
    }
    for (const auto& [u, v] : edges_) builder.AddEdge(u, v);
    for (size_t i = 0; i < shape_.nodes.size(); ++i) {
      std::vector<VertexId> span;
      CollectSpan(static_cast<int32_t>(i), &span);
      if (shape_.nodes[i].is_fork) {
        builder.DeclareFork(std::move(span));
      } else {
        builder.DeclareLoop(std::move(span));
      }
    }
    return std::move(builder).Build();
  }

 private:
  std::vector<int32_t> TopoOrderChildrenFirst() {
    std::vector<int32_t> order;
    std::vector<std::pair<int32_t, size_t>> stack;
    for (int32_t r : shape_.root_children) stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [n, ci] = stack.back();
      const auto& kids = shape_.nodes[n].children;
      if (ci < kids.size()) {
        int32_t child = kids[ci++];
        stack.emplace_back(child, 0);
      } else {
        order.push_back(n);
        stack.pop_back();
      }
    }
    return order;
  }

  VertexId NewVertex(size_t frag) {
    VertexId v = next_vertex_++;
    SKL_CHECK(v < opt_.num_vertices);
    frag_vertices_[frag].push_back(v);
    return v;
  }

  /// Lays out one fragment (frag 0 = root, frag i+1 = subgraph i): an own
  /// chain s -> ... -> t with the node's child capsules spliced in series at
  /// random positions.
  void LayoutFragment(size_t frag) {
    const std::vector<int32_t>* children;
    if (frag == 0) {
      children = &shape_.root_children;
    } else {
      children = &shape_.nodes[frag - 1].children;
    }
    // Element sequence: middles ('m') and child capsules (index).
    std::vector<int32_t> elements;
    for (size_t i = 0; i < middles_[frag]; ++i) elements.push_back(-1);
    for (int32_t c : *children) elements.push_back(c);
    rng_->Shuffle(&elements);

    VertexId s = NewVertex(frag);
    frag_sources_[frag] = s;
    frag_chain_[frag].push_back(s);
    VertexId prev = s;
    bool prev_is_own = true;
    for (int32_t el : elements) {
      if (el < 0) {
        VertexId m = NewVertex(frag);
        edges_.emplace_back(prev, m);
        frag_chain_[frag].push_back(m);
        prev = m;
        prev_is_own = true;
      } else {
        size_t cf = static_cast<size_t>(el) + 1;
        edges_.emplace_back(prev, frag_sources_[cf]);
        prev = frag_sinks_[cf];
        prev_is_own = false;
      }
    }
    (void)prev_is_own;
    VertexId t = NewVertex(frag);
    edges_.emplace_back(prev, t);
    frag_sinks_[frag] = t;
    frag_chain_[frag].push_back(t);
  }

  /// Adds `count` forward skip edges between own-chain vertices of the same
  /// fragment (skipping adjacent pairs, which would duplicate chain edges;
  /// never touching capsule terminals, which keeps loops complete).
  Status AddSkipEdges(size_t count) {
    if (count == 0) return Status::OK();
    // Candidate capacity per fragment: pairs (i, j) with j >= i + 2 along the
    // own chain. Note chain positions are not necessarily adjacent in the
    // final graph when capsules sit between them, so (i, i+1) pairs would be
    // legal there, but excluding them keeps the logic simple and safe.
    std::vector<size_t> frags_with_capacity;
    size_t capacity = 0;
    for (size_t f = 0; f < frag_chain_.size(); ++f) {
      size_t L = frag_chain_[f].size();
      if (L >= 3) {
        frags_with_capacity.push_back(f);
        capacity += (L - 1) * (L - 2) / 2;
      }
    }
    if (capacity < count) {
      return Status::InvalidArgument(
          "num_edges too large: only " + std::to_string(capacity) +
          " skip-edge slots available");
    }
    std::unordered_set<uint64_t> used;
    for (const auto& [u, v] : edges_) {
      used.insert((static_cast<uint64_t>(u) << 32) | v);
    }
    size_t added = 0;
    size_t attempts = 0;
    while (added < count) {
      if (++attempts > count * 64 + 4096) {
        // Rejection sampling stalled (tiny fragments); fall back to a
        // deterministic scan.
        for (size_t f : frags_with_capacity) {
          const auto& chain = frag_chain_[f];
          for (size_t i = 0; i + 2 < chain.size() && added < count; ++i) {
            for (size_t j = i + 2; j < chain.size() && added < count; ++j) {
              uint64_t key =
                  (static_cast<uint64_t>(chain[i]) << 32) | chain[j];
              if (used.insert(key).second) {
                edges_.emplace_back(chain[i], chain[j]);
                ++added;
              }
            }
          }
        }
        if (added < count) {
          return Status::InvalidArgument("could not place all skip edges");
        }
        break;
      }
      size_t f = frags_with_capacity[rng_->NextBelow(
          frags_with_capacity.size())];
      const auto& chain = frag_chain_[f];
      if (chain.size() < 3) continue;
      size_t i = rng_->NextBelow(chain.size() - 2);
      size_t j = i + 2 + rng_->NextBelow(chain.size() - i - 2);
      uint64_t key = (static_cast<uint64_t>(chain[i]) << 32) | chain[j];
      if (!used.insert(key).second) continue;
      edges_.emplace_back(chain[i], chain[j]);
      ++added;
    }
    return Status::OK();
  }

  void CollectSpan(int32_t node, std::vector<VertexId>* out) {
    size_t frag = static_cast<size_t>(node) + 1;
    out->insert(out->end(), frag_vertices_[frag].begin(),
                frag_vertices_[frag].end());
    for (int32_t c : shape_.nodes[node].children) CollectSpan(c, out);
  }

  const SpecGenOptions& opt_;
  const HierShape& shape_;
  Rng* rng_;

  std::vector<size_t> middles_;
  std::vector<VertexId> frag_sources_;
  std::vector<VertexId> frag_sinks_;
  std::vector<std::vector<VertexId>> frag_vertices_;
  std::vector<std::vector<VertexId>> frag_chain_;  ///< own chain, in order
  std::vector<std::pair<VertexId, VertexId>> edges_;
  VertexId next_vertex_ = 0;
};

}  // namespace

Result<Specification> GenerateSpecification(const SpecGenOptions& options) {
  if (options.num_vertices < 2) {
    return Status::InvalidArgument("need at least two vertices");
  }
  if (options.depth < 1) {
    return Status::InvalidArgument("depth must be >= 1");
  }
  if (options.depth == 1 && options.num_subgraphs != 0) {
    return Status::InvalidArgument("depth 1 admits no subgraphs");
  }
  if (options.depth >= 2 && options.num_subgraphs < options.depth - 1) {
    return Status::InvalidArgument(
        "need at least depth-1 subgraphs to realize the requested depth");
  }
  if (options.num_edges + 1 < options.num_vertices) {
    return Status::InvalidArgument("num_edges below num_vertices - 1");
  }
  Rng rng(options.seed);
  HierShape shape;
  if (options.num_subgraphs > 0) shape = BuildShape(options, &rng);
  SpecLayout layout(options, shape, &rng);
  return layout.Build();
}

}  // namespace skl
