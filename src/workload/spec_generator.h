// Random workflow-specification generator. Produces validated specifications
// hitting exact structural targets — the paper parameterizes synthetic specs
// by (n_G, m_G, |T_G|, [T_G]) (Section 8) — by composing well-nested
// fork/loop "capsules" in series along a backbone chain and topping up the
// edge count with forward skip edges that respect Definitions 1-2.
#ifndef SKL_WORKLOAD_SPEC_GENERATOR_H_
#define SKL_WORKLOAD_SPEC_GENERATOR_H_

#include <string>

#include "src/common/status.h"
#include "src/workflow/specification.h"

namespace skl {

struct SpecGenOptions {
  uint32_t num_vertices = 100;   ///< n_G (exact)
  uint32_t num_edges = 200;      ///< m_G (exact, if feasible)
  uint32_t num_subgraphs = 9;    ///< |T_G| - 1 (forks + loops, exact)
  uint32_t depth = 4;            ///< [T_G] (exact; 1 = no forks/loops)
  double fork_fraction = 0.5;    ///< probability a subgraph is a fork
  uint64_t seed = 1;
  std::string name_prefix = "m";
};

/// Generates a specification matching the options. Fails with
/// InvalidArgument when the targets are mutually infeasible (e.g. not enough
/// vertices to host the requested subgraphs, or an edge count below n_G - 1).
Result<Specification> GenerateSpecification(const SpecGenOptions& options);

}  // namespace skl

#endif  // SKL_WORKLOAD_SPEC_GENERATOR_H_
