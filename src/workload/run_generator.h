// Run generator: simulates workflow executions by sampling an execution-plan
// tree (per-fork/loop replication counts) and materializing the run graph
// bottom-up per Lemma 4.1. Generated runs conform to the specification by
// construction and carry ground-truth plan + context + origin, which backs
// the property tests and the paper's "with execution plan & context"
// experiment setting (Figure 13).
#ifndef SKL_WORKLOAD_RUN_GENERATOR_H_
#define SKL_WORKLOAD_RUN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/core/execution_plan.h"
#include "src/workflow/run.h"
#include "src/workflow/specification.h"

namespace skl {

struct GeneratedRun {
  Run run;
  ExecutionPlan plan;                ///< ground-truth T_R + context
  std::vector<VertexId> origin;      ///< ground-truth origins
};

struct RunGenOptions {
  /// Mean replication count per fork/loop execution (>= 1). Ignored when
  /// target_vertices > 0.
  double mean_replication = 2.0;
  /// If nonzero, the generator searches a replication factor so the run has
  /// about this many vertices (within `target_tolerance`), as in the paper's
  /// 0.1K..102.4K sweeps.
  uint32_t target_vertices = 0;
  double target_tolerance = 0.10;
  /// Permute vertex ids of the produced run so downstream code cannot rely
  /// on generation order.
  bool shuffle_vertex_ids = true;
  uint64_t seed = 1;
};

class RunGenerator {
 public:
  explicit RunGenerator(const Specification* spec) : spec_(spec) {}

  /// Generates one run (plus ground truth) according to `options`.
  Result<GeneratedRun> Generate(const RunGenOptions& options) const;

  /// Generates `count` independent runs, run i with seed options.seed + i,
  /// fanned out over a ThreadPool with `num_threads` workers (0 = one per
  /// hardware thread). Results are in seed order regardless of scheduling;
  /// the first generation error, if any, fails the whole batch. Feeds the
  /// bulk ingestion paths (ProvenanceService::AddRunsParallel) and the
  /// scaling benchmarks.
  Result<std::vector<GeneratedRun>> GenerateMany(const RunGenOptions& options,
                                                 size_t count,
                                                 unsigned num_threads = 0) const;

  /// Expected minimal run: every fork/loop executed exactly once (the run is
  /// then isomorphic to the specification).
  Result<GeneratedRun> GenerateMinimal(uint64_t seed = 1) const;

 private:
  const Specification* spec_;
};

}  // namespace skl

#endif  // SKL_WORKLOAD_RUN_GENERATOR_H_
