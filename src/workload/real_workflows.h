// Substituted "real-life" dataset. The paper evaluates on six scientific
// workflows collected from the myExperiment repository (Table 1). The
// repository is not available offline, so we reconstruct specifications with
// exactly the published structural characteristics (n_G, m_G, |T_G|, [T_G]),
// which are the only properties the experiments depend on. See DESIGN.md.
#ifndef SKL_WORKLOAD_REAL_WORKFLOWS_H_
#define SKL_WORKLOAD_REAL_WORKFLOWS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workflow/specification.h"

namespace skl {

/// Table 1 row.
struct RealWorkflowInfo {
  std::string name;
  uint32_t n_g;        ///< vertices
  uint32_t m_g;        ///< edges
  uint32_t t_g_size;   ///< |T_G| = forks + loops + 1
  uint32_t t_g_depth;  ///< [T_G]
};

/// The six workflows of Table 1 (EBI, PubMed, QBLAST, BioAID, ProScan,
/// ProDisc) in paper order.
const std::vector<RealWorkflowInfo>& RealWorkflowTable();

/// Builds the workflow with the given Table 1 name ("QBLAST", ...).
Result<Specification> BuildRealWorkflow(const std::string& name);

/// Builds the paper's running example (Figures 2-3): modules a..h, fork F1
/// {a,b,c,h}, loop L1 {b,c}, loop L2 {e,f,g}, fork F2 {e,f,g} nested per
/// Figure 6.
Result<Specification> BuildRunningExampleSpec();

}  // namespace skl

#endif  // SKL_WORKLOAD_REAL_WORKFLOWS_H_
