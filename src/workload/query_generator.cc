#include "src/workload/query_generator.h"

#include "src/common/random.h"

namespace skl {

std::vector<std::pair<VertexId, VertexId>> GenerateQueries(
    VertexId num_vertices, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.emplace_back(
        static_cast<VertexId>(rng.NextBelow(num_vertices)),
        static_cast<VertexId>(rng.NextBelow(num_vertices)));
  }
  return queries;
}

}  // namespace skl
