#include "src/workload/run_generator.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace skl {

namespace {

/// Sampled replication structure: one node per future + copy; per hierarchy
/// child a group of sketch children (>= 1 copy each). Built first (cheap),
/// sized, and only then materialized.
struct PlanSketch {
  struct Node {
    HierNodeId hier;
    /// Parallel to hierarchy().node(hier).children: sketch node ids of the
    /// copies in each execution group.
    std::vector<std::vector<int32_t>> groups;
  };
  std::vector<Node> nodes;
  uint64_t total_vertices = 0;
  bool capped = false;
};

/// Builds a sketch with mean replication `mean`; aborts once the projected
/// run exceeds `vertex_cap` (the caller is probing for a target size).
PlanSketch BuildSketch(const Hierarchy& hg, double mean,
                                     Rng* rng, uint64_t vertex_cap) {
  PlanSketch sketch;
  struct Frame {
    int32_t sketch_id;
    size_t group_index = 0;
    uint32_t copies_left = 0;
  };
  auto new_node = [&](HierNodeId h) -> int32_t {
    int32_t id = static_cast<int32_t>(sketch.nodes.size());
    sketch.nodes.push_back(PlanSketch::Node{
        h, std::vector<std::vector<int32_t>>(hg.node(h).children.size())});
    sketch.total_vertices += hg.OwnVertices(h).size();
    return id;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{new_node(kHierRoot)});
  while (!stack.empty()) {
    if (sketch.total_vertices > vertex_cap) {
      sketch.capped = true;
      return sketch;
    }
    Frame& f = stack.back();
    const HierNode& hn = hg.node(sketch.nodes[f.sketch_id].hier);
    if (f.group_index >= hn.children.size()) {
      stack.pop_back();
      continue;
    }
    if (f.copies_left == 0 &&
        sketch.nodes[f.sketch_id].groups[f.group_index].empty()) {
      f.copies_left = rng->NextCount(mean);
    }
    if (f.copies_left == 0) {
      ++f.group_index;
      continue;
    }
    --f.copies_left;
    HierNodeId child = hn.children[f.group_index];
    int32_t cid = new_node(child);
    sketch.nodes[f.sketch_id].groups[f.group_index].push_back(cid);
    stack.push_back(Frame{cid});
  }
  return sketch;
}

/// Materializes a sketch into a run graph + ground-truth plan (Lemma 4.1).
class Materializer {
 public:
  Materializer(const Specification& spec,
               const PlanSketch& sketch,
               const std::vector<VertexId>& perm)
      : spec_(spec),
        hg_(spec.hierarchy()),
        sketch_(sketch),
        perm_(perm),
        plan_(static_cast<VertexId>(perm.size())),
        modules_(perm.size(), kInvalidModule) {}

  GeneratedRun Finish() && {
    auto [root_s, root_t] = MatPlus(0, kPlanRoot, kInvalidVertex,
                                    kInvalidVertex);
    (void)root_s;
    (void)root_t;
    RunBuilder rb(spec_.shared_modules());
    for (ModuleId m : modules_) {
      SKL_CHECK_MSG(m != kInvalidModule, "unassigned run vertex");
      rb.AddVertexById(m);
    }
    for (const auto& [u, v] : edges_) rb.AddEdge(u, v);
    auto run = std::move(rb).Build();
    SKL_CHECK_MSG(run.ok(), "generated run failed to build");
    GeneratedRun out{std::move(run).value(), std::move(plan_), {}};
    return out;
  }

 private:
  VertexId NewVertex(VertexId spec_vertex) {
    VertexId id = perm_[next_seq_++];
    modules_[id] = static_cast<ModuleId>(spec_vertex);
    return id;
  }

  VertexId Resolve(const std::unordered_map<VertexId, VertexId>& lmap,
                   VertexId spec_vertex) const {
    auto it = lmap.find(spec_vertex);
    SKL_CHECK_MSG(it != lmap.end(), "unresolved boundary vertex");
    return it->second;
  }

  /// Materializes the + copy for sketch node `sid`. For fork copies the
  /// shared terminals are passed in as ports; loops create their own.
  /// Returns the run vertices standing for (s(H), t(H)) of this copy.
  std::pair<VertexId, VertexId> MatPlus(int32_t sid, PlanNodeId plan_parent,
                                        VertexId port_s, VertexId port_t) {
    const auto& snode = sketch_.nodes[sid];
    const HierNode& hn = hg_.node(snode.hier);
    const bool is_root = snode.hier == kHierRoot;
    PlanNodeId x;
    if (is_root) {
      x = kPlanRoot;
    } else {
      x = plan_.AddNode(hn.kind == HierKind::kFork ? PlanNodeType::kFPlus
                                                   : PlanNodeType::kLPlus,
                        snode.hier, plan_parent);
    }
    std::unordered_map<VertexId, VertexId> lmap;
    for (VertexId v : hg_.OwnVertices(snode.hier)) {
      VertexId id = NewVertex(v);
      lmap.emplace(v, id);
      plan_.AssignContext(id, x);
    }
    if (port_s != kInvalidVertex) {
      lmap.emplace(hn.source, port_s);
      lmap.emplace(hn.sink, port_t);
    }
    // Loop children first: their exposed terminals may serve as boundary
    // vertices of sibling fork children and of own edges.
    for (size_t gi = 0; gi < hn.children.size(); ++gi) {
      HierNodeId child = hn.children[gi];
      const HierNode& cn = hg_.node(child);
      if (cn.kind != HierKind::kLoop) continue;
      PlanNodeId g = plan_.AddNode(PlanNodeType::kLMinus, child, x);
      VertexId first_s = kInvalidVertex;
      VertexId prev_t = kInvalidVertex;
      for (int32_t csid : snode.groups[gi]) {
        auto [cs, ct] = MatPlus(csid, g, kInvalidVertex, kInvalidVertex);
        if (first_s == kInvalidVertex) {
          first_s = cs;
        } else {
          edges_.emplace_back(prev_t, cs);  // serial composition
        }
        prev_t = ct;
      }
      lmap.emplace(cn.source, first_s);
      lmap.emplace(cn.sink, prev_t);
    }
    for (size_t gi = 0; gi < hn.children.size(); ++gi) {
      HierNodeId child = hn.children[gi];
      const HierNode& cn = hg_.node(child);
      if (cn.kind != HierKind::kFork) continue;
      PlanNodeId g = plan_.AddNode(PlanNodeType::kFMinus, child, x);
      VertexId fs = Resolve(lmap, cn.source);
      VertexId ft = Resolve(lmap, cn.sink);
      for (int32_t csid : snode.groups[gi]) {
        MatPlus(csid, g, fs, ft);  // parallel composition: shared terminals
      }
    }
    for (const auto& [u, v] : hn.own_edges) {
      edges_.emplace_back(Resolve(lmap, u), Resolve(lmap, v));
    }
    return {Resolve(lmap, hn.source), Resolve(lmap, hn.sink)};
  }

  const Specification& spec_;
  const Hierarchy& hg_;
  const PlanSketch& sketch_;
  const std::vector<VertexId>& perm_;
  ExecutionPlan plan_;
  std::vector<ModuleId> modules_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  size_t next_seq_ = 0;
};

}  // namespace

Result<GeneratedRun> RunGenerator::Generate(const RunGenOptions& options) const {
  const Hierarchy& hg = spec_->hierarchy();
  Rng rng(options.seed);

  PlanSketch sketch;
  if (options.target_vertices == 0) {
    sketch = BuildSketch(hg, std::max(1.0, options.mean_replication), &rng,
                         UINT64_MAX);
  } else {
    const double target = options.target_vertices;
    double factor = 2.0;
    PlanSketch best;
    double best_err = 1e300;
    for (int iter = 0; iter < 48; ++iter) {
      uint64_t child_seed = options.seed * 0x9e3779b97f4a7c15ULL +
                            static_cast<uint64_t>(iter) + 1;
      Rng trial_rng(child_seed);
      PlanSketch trial =
          BuildSketch(hg, factor, &trial_rng,
                      static_cast<uint64_t>(target * 4) + 1024);
      double size = trial.capped ? target * 8
                                 : static_cast<double>(trial.total_vertices);
      double err = std::abs(size - target) / target;
      if (!trial.capped && err < best_err) {
        best_err = err;
        best = std::move(trial);
      }
      if (best_err <= options.target_tolerance) break;
      double adjust = std::pow(target / size, 0.8);
      factor = std::clamp(factor * std::clamp(adjust, 0.2, 8.0), 1.0, 1e9);
    }
    if (best.nodes.empty()) {
      return Status::Internal("run generator failed to build a sketch");
    }
    sketch = std::move(best);
  }

  // Permutation for vertex ids.
  std::vector<VertexId> perm(sketch.total_vertices);
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<VertexId>(i);
  if (options.shuffle_vertex_ids) rng.Shuffle(&perm);

  Materializer mat(*spec_, sketch, perm);
  GeneratedRun out = std::move(mat).Finish();
  // Origins equal module ids because the run shares the spec module table.
  out.origin.resize(out.run.num_vertices());
  for (VertexId v = 0; v < out.run.num_vertices(); ++v) {
    out.origin[v] = static_cast<VertexId>(out.run.ModuleOf(v));
  }
  return out;
}

Result<std::vector<GeneratedRun>> RunGenerator::GenerateMany(
    const RunGenOptions& options, size_t count, unsigned num_threads) const {
  // Generate is a pure function of (spec, options), so runs fan out with no
  // shared mutable state; slot i is owned by exactly one worker.
  // Declaration order matters: `pool` after `slots`, so an unwind joins the
  // workers before the slots they write are destroyed.
  std::vector<std::optional<Result<GeneratedRun>>> slots(count);
  ThreadPool pool(ThreadPool::Resolve(num_threads));
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(pool.Submit([&, i] {
      RunGenOptions per_run = options;
      per_run.seed = options.seed + i;
      slots[i] = Generate(per_run);
    }));
  }
  for (std::future<void>& f : futures) f.get();

  std::vector<GeneratedRun> runs;
  runs.reserve(count);
  for (std::optional<Result<GeneratedRun>>& slot : slots) {
    if (!slot->ok()) return slot->status();
    runs.push_back(std::move(*slot).value());
  }
  return runs;
}

Result<GeneratedRun> RunGenerator::GenerateMinimal(uint64_t seed) const {
  RunGenOptions options;
  options.mean_replication = 1.0;
  options.target_vertices = 0;
  options.seed = seed;
  return Generate(options);
}

}  // namespace skl
