// Random reachability-query workloads (vertex pairs), as used in the paper's
// query-time measurements (10^6 random queries per point).
#ifndef SKL_WORKLOAD_QUERY_GENERATOR_H_
#define SKL_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/digraph.h"

namespace skl {

/// `count` uniform random ordered vertex pairs over [0, num_vertices).
std::vector<std::pair<VertexId, VertexId>> GenerateQueries(
    VertexId num_vertices, size_t count, uint64_t seed);

}  // namespace skl

#endif  // SKL_WORKLOAD_QUERY_GENERATOR_H_
