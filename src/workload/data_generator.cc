#include "src/workload/data_generator.h"

#include "src/common/check.h"
#include "src/common/random.h"

namespace skl {

DataCatalog GenerateDataCatalog(const Run& run,
                                const DataGenOptions& options) {
  Rng rng(options.seed);
  DataCatalog catalog;
  const Digraph& g = run.graph();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto out = g.OutNeighbors(u);
    if (out.empty()) continue;
    // Optionally one broadcast item read by every successor.
    if (out.size() > 1 && rng.NextBool(options.multi_reader_prob)) {
      DataItemId shared = catalog.AddItem(u);
      for (VertexId v : out) {
        Status st = catalog.AddFlow(shared, u, v);
        SKL_CHECK(st.ok());
      }
    }
    for (VertexId v : out) {
      for (uint32_t i = 0; i < options.items_per_edge; ++i) {
        DataItemId item = catalog.AddItem(u);
        Status st = catalog.AddFlow(item, u, v);
        SKL_CHECK(st.ok());
      }
    }
  }
  return catalog;
}

}  // namespace skl
