#include "src/workload/real_workflows.h"

#include "src/workload/spec_generator.h"

namespace skl {

const std::vector<RealWorkflowInfo>& RealWorkflowTable() {
  static const std::vector<RealWorkflowInfo> kTable = {
      {"EBI", 29, 31, 4, 2},      {"PubMed", 35, 45, 3, 3},
      {"QBLAST", 58, 72, 6, 3},   {"BioAID", 71, 87, 10, 4},
      {"ProScan", 89, 119, 9, 4}, {"ProDisc", 111, 158, 9, 3},
  };
  return kTable;
}

Result<Specification> BuildRealWorkflow(const std::string& name) {
  for (size_t i = 0; i < RealWorkflowTable().size(); ++i) {
    const RealWorkflowInfo& info = RealWorkflowTable()[i];
    if (info.name != name) continue;
    SpecGenOptions opt;
    opt.num_vertices = info.n_g;
    opt.num_edges = info.m_g;
    opt.num_subgraphs = info.t_g_size - 1;
    opt.depth = info.t_g_depth;
    opt.fork_fraction = 0.5;
    // Fixed per-workflow seed: the reconstruction is deterministic.
    opt.seed = 0xb10ba5e + i * 7919;
    opt.name_prefix = info.name + "_step";
    return GenerateSpecification(opt);
  }
  return Status::NotFound("unknown real workflow: " + name);
}

Result<Specification> BuildRunningExampleSpec() {
  SpecificationBuilder builder;
  VertexId a = builder.AddModule("a");
  VertexId b = builder.AddModule("b");
  VertexId c = builder.AddModule("c");
  VertexId h = builder.AddModule("h");
  VertexId d = builder.AddModule("d");
  VertexId e = builder.AddModule("e");
  VertexId f = builder.AddModule("f");
  VertexId g = builder.AddModule("g");
  builder.AddEdge(a, b)
      .AddEdge(b, c)
      .AddEdge(c, h)
      .AddEdge(a, d)
      .AddEdge(d, e)
      .AddEdge(e, f)
      .AddEdge(f, g)
      .AddEdge(g, h);
  builder.DeclareFork({a, b, c, h});  // F1
  builder.DeclareLoop({b, c});        // L1 (inside F1)
  builder.DeclareLoop({e, f, g});     // L2
  builder.DeclareFork({e, f, g});     // F2 (inside L2; equal edge sets)
  return std::move(builder).Build();
}

}  // namespace skl
