// Random data-item annotations for a run (paper Section 6): items flow on
// edges; each item has one writer and one or more readers.
#ifndef SKL_WORKLOAD_DATA_GENERATOR_H_
#define SKL_WORKLOAD_DATA_GENERATOR_H_

#include <cstdint>

#include "src/core/data_provenance.h"
#include "src/workflow/run.h"

namespace skl {

struct DataGenOptions {
  /// Items created per (writer, edge) before sharing.
  uint32_t items_per_edge = 1;
  /// Probability that a writer shares one item across all its out-edges
  /// (producing |Inputs| > 1 items, the paper's factor k).
  double multi_reader_prob = 0.3;
  uint64_t seed = 1;
};

/// Generates a catalog where every run edge carries at least one item.
DataCatalog GenerateDataCatalog(const Run& run, const DataGenOptions& options);

}  // namespace skl

#endif  // SKL_WORKLOAD_DATA_GENERATOR_H_
